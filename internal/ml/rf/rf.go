// Package rf implements a random-forest regressor on log running times.
// Random forests were the learner of the authors' earlier work ([9],
// PMBS 2018); the paper found them weaker than XGBoost/GAM/KNN on larger
// dataset collections, so this implementation exists for the ablation
// benchmarks that reproduce that comparison.
package rf

import (
	"fmt"
	"math"

	"mpicollpred/internal/ml/tree"
	"mpicollpred/internal/sim"
)

// Options controls the forest.
type Options struct {
	NumTrees int
	MaxDepth int
	MinLeaf  int
	// MTry features per split; 0 = d/3 (regression default).
	MTry int
	Seed uint64
}

// DefaultOptions returns standard out-of-the-box forest settings.
func DefaultOptions() Options {
	return Options{NumTrees: 100, MaxDepth: 20, MinLeaf: 2, Seed: 1}
}

// Regressor is a fitted forest.
type Regressor struct {
	opts  Options
	trees []*tree.Tree
}

// New returns a forest with default options.
func New() *Regressor { return &Regressor{opts: DefaultOptions()} }

// NewWith returns a forest with explicit options.
func NewWith(opts Options) *Regressor {
	if opts.NumTrees < 1 {
		opts.NumTrees = 1
	}
	return &Regressor{opts: opts}
}

// State is the exported fitted-forest state, used by the snapshot codec.
type State struct {
	Opts  Options
	Trees [][]tree.Node
}

// State exports the fitted forest.
func (r *Regressor) State() State {
	s := State{Opts: r.opts, Trees: make([][]tree.Node, len(r.trees))}
	for i, t := range r.trees {
		s.Trees[i] = t.State()
	}
	return s
}

// FromState rebuilds a fitted forest; tree.FromState validates every tree's
// structure.
func FromState(s State) (*Regressor, error) {
	r := &Regressor{opts: s.Opts, trees: make([]*tree.Tree, len(s.Trees))}
	for i, nodes := range s.Trees {
		t, err := tree.FromState(nodes)
		if err != nil {
			return nil, fmt.Errorf("rf: snapshot tree %d: %w", i, err)
		}
		r.trees[i] = t
	}
	return r, nil
}

// Fit trains the forest on log targets (bagging + feature subsampling).
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("rf: bad training set (%d rows, %d targets)", len(x), len(y))
	}
	logy := make([]float64, len(y))
	for i, v := range y {
		if !(v > 0) {
			return fmt.Errorf("rf: target %d = %g; must be positive", i, v)
		}
		logy[i] = math.Log(v)
	}
	n := len(x)
	mtry := r.opts.MTry
	if mtry <= 0 {
		// 2/3 of the features: with the paper's 3-4 feature vectors the
		// classic d/3 rule would leave a single feature per split, which
		// decorrelates the trees into noise.
		mtry = (2*len(x[0]) + 2) / 3
	}
	rng := sim.NewRNG(sim.Seed(r.opts.Seed, 0xF0537))
	r.trees = r.trees[:0]
	idx := make([]int, n)
	for t := 0; t < r.opts.NumTrees; t++ {
		for i := range idx {
			idx[i] = rng.Intn(n) // bootstrap sample
		}
		tr := tree.BuildVariance(x, logy, idx, tree.Options{
			MaxDepth: r.opts.MaxDepth,
			MinLeaf:  r.opts.MinLeaf,
			MTry:     mtry,
			RNG:      rng,
		})
		r.trees = append(r.trees, tr)
	}
	return nil
}

// Predict returns exp(mean of the trees' log-time predictions).
func (r *Regressor) Predict(x []float64) float64 {
	if len(r.trees) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, t := range r.trees {
		s += t.Predict(x)
	}
	return math.Exp(s / float64(len(r.trees)))
}
