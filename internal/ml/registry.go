package ml

import (
	"mpicollpred/internal/ml/gam"
	"mpicollpred/internal/ml/knn"
	"mpicollpred/internal/ml/linreg"
	"mpicollpred/internal/ml/rf"
	"mpicollpred/internal/ml/xgb"
)

// The learner registry. The first three are the learners the paper settles
// on; "rf" and "linear" are the rejected baselines kept for ablation.
func init() {
	Register("knn", func() Regressor { return validated{knn.New()} })
	Register("gam", func() Regressor { return validated{gam.New()} })
	Register("xgboost", func() Regressor { return validated{xgb.New()} })
	Register("rf", func() Regressor { return validated{rf.New()} })
	Register("linear", func() Regressor { return validated{linreg.New()} })
}

// validated wraps a learner with the shared input validation.
type validated struct {
	Regressor
}

func (v validated) Fit(x [][]float64, y []float64) error {
	if err := validate(x, y); err != nil {
		return err
	}
	return v.Regressor.Fit(x, y)
}

// Unwrap strips the registry's validation wrapper, exposing the concrete
// learner underneath — the snapshot codec type-switches on it.
func Unwrap(r Regressor) Regressor {
	if v, ok := r.(validated); ok {
		return v.Regressor
	}
	return r
}

// Validated wraps a learner with the shared input validation, the same
// wrapper New applies; the snapshot codec re-wraps decoded learners so
// restored and freshly trained models behave identically.
func Validated(r Regressor) Regressor { return validated{r} }
