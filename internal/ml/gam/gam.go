// Package gam implements a generalized additive model in the spirit of the
// paper's mgcv setup: one penalized cubic B-spline smooth per input feature
// (P-splines, Eilers & Marx), Gamma family with log link, fitted by
// penalized IRLS, with the smoothing parameter chosen by GCV from a small
// grid. The Gamma/log-link combination is what makes GAM competitive for
// running times spanning microseconds to seconds.
package gam

import (
	"fmt"
	"math"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/ml/linalg"
)

// Options controls the smooths.
type Options struct {
	// NumBasis is the number of B-spline basis functions per feature.
	NumBasis int
	// Lambdas is the GCV search grid for the smoothing parameter (shared
	// across features, as a deliberate out-of-the-box choice).
	Lambdas []float64
	// MaxIter bounds the IRLS iterations.
	MaxIter int
}

// DefaultOptions returns the out-of-the-box configuration.
func DefaultOptions() Options {
	return Options{
		NumBasis: 8,
		Lambdas:  []float64{0.01, 0.1, 1, 10, 100},
		MaxIter:  25,
	}
}

// Regressor is a fitted GAM.
type Regressor struct {
	opts Options

	lo, hi []float64 // per-feature training range (inputs are clamped)
	active []bool    // false for constant features (no smooth)
	beta   []float64 // intercept followed by per-feature coefficient blocks
	lambda float64   // selected smoothing parameter
	edf    float64   // effective degrees of freedom at the selected lambda
}

// New returns a GAM with default options.
func New() *Regressor { return &Regressor{opts: DefaultOptions()} }

// NewWith returns a GAM with explicit options.
func NewWith(opts Options) *Regressor {
	if opts.NumBasis < 4 {
		opts.NumBasis = 4
	}
	if opts.MaxIter < 1 {
		opts.MaxIter = 1
	}
	if len(opts.Lambdas) == 0 {
		opts.Lambdas = []float64{1}
	}
	return &Regressor{opts: opts}
}

// State is the exported fitted-model state, used by the snapshot codec: the
// spline coefficients plus the clamping ranges and options Predict needs to
// rebuild the exact design row.
type State struct {
	Opts   Options
	Lo, Hi []float64
	Active []bool
	Beta   []float64
	Lambda float64
	EDF    float64
}

// State exports the fitted model.
func (r *Regressor) State() State {
	return State{Opts: r.opts, Lo: r.lo, Hi: r.hi, Active: r.active,
		Beta: r.beta, Lambda: r.lambda, EDF: r.edf}
}

// FromState rebuilds a fitted model, validating that the coefficient vector
// matches the basis layout implied by the options and active features.
func FromState(s State) (*Regressor, error) {
	d := len(s.Lo)
	if len(s.Hi) != d || len(s.Active) != d {
		return nil, fmt.Errorf("gam: snapshot ranges disagree: %d lo, %d hi, %d active",
			d, len(s.Hi), len(s.Active))
	}
	if s.Opts.NumBasis < 4 {
		return nil, fmt.Errorf("gam: snapshot basis size %d < 4", s.Opts.NumBasis)
	}
	cols := 1
	for _, act := range s.Active {
		if act {
			cols += s.Opts.NumBasis
		}
	}
	if len(s.Beta) != cols {
		return nil, fmt.Errorf("gam: snapshot has %d coefficients, layout needs %d", len(s.Beta), cols)
	}
	return &Regressor{opts: s.Opts, lo: s.Lo, hi: s.Hi, active: s.Active,
		beta: s.Beta, lambda: s.Lambda, edf: s.EDF}, nil
}

// Lambda returns the GCV-selected smoothing parameter.
func (r *Regressor) Lambda() float64 { return r.lambda }

// EDF returns the effective degrees of freedom of the selected fit.
func (r *Regressor) EDF() float64 { return r.edf }

// Fit trains the model.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("gam: bad training set (%d rows, %d targets)", len(x), len(y))
	}
	for i, v := range y {
		if !(v > 0) {
			return fmt.Errorf("gam: target %d = %g; the Gamma family needs positive responses", i, v)
		}
	}
	d := len(x[0])
	r.lo = make([]float64, d)
	r.hi = make([]float64, d)
	r.active = make([]bool, d)
	for j := 0; j < d; j++ {
		lo, hi := x[0][j], x[0][j]
		for _, row := range x {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		r.lo[j], r.hi[j] = lo, hi
		r.active[j] = hi > lo
	}

	design := r.designMatrix(x)
	pen := r.penaltyTemplate()

	logy := make([]float64, len(y))
	for i, v := range y {
		logy[i] = math.Log(v)
	}

	bestGCV := math.Inf(1)
	var bestBeta []float64
	var bestLambda, bestEDF float64
	for _, lambda := range r.opts.Lambdas {
		beta, gcv, edf, err := r.fitIRLS(design, pen, y, logy, lambda)
		if err != nil {
			continue
		}
		if gcv < bestGCV {
			bestGCV, bestBeta, bestLambda, bestEDF = gcv, beta, lambda, edf
		}
	}
	if bestBeta == nil {
		return fmt.Errorf("gam: IRLS failed for every lambda in the grid")
	}
	r.beta = bestBeta
	r.lambda = bestLambda
	r.edf = bestEDF
	return nil
}

// fitIRLS runs penalized IRLS for one smoothing parameter and returns the
// coefficients and the GCV score. For the Gamma family with log link the
// IRLS weights are identically 1, so each iteration is a penalized least
// squares on the working response z = eta + (y - mu)/mu.
func (r *Regressor) fitIRLS(design *linalg.Matrix, pen *linalg.Matrix, y, logy []float64, lambda float64) (beta []float64, gcv, edf float64, err error) {
	n := design.Rows
	cols := design.Cols

	// Penalized normal-matrix: XtX + lambda*pen (+ tiny ridge on smooth
	// blocks, applied inside penaltyTemplate).
	xtx := design.AtA(nil)
	a := linalg.New(cols, cols)
	for i := range a.Data {
		a.Data[i] = xtx.Data[i] + lambda*pen.Data[i]
	}

	// Start from the log targets: exact for a saturated model and an
	// excellent IRLS warm start in general.
	z := append([]float64(nil), logy...)
	eta := make([]float64, n)
	for iter := 0; iter < r.opts.MaxIter; iter++ {
		rhs := design.AtV(z, nil)
		beta, err = linalg.SolveSPD(a, rhs)
		if err != nil {
			return nil, 0, 0, err
		}
		newEta := design.MulVec(beta)
		shift := 0.0
		for i := range newEta {
			// Clamp to a sane log-seconds range to avoid exp overflow on
			// wild intermediate iterations.
			if newEta[i] > 30 {
				newEta[i] = 30
			}
			if newEta[i] < -40 {
				newEta[i] = -40
			}
			s := math.Abs(newEta[i] - eta[i])
			if s > shift {
				shift = s
			}
		}
		eta = newEta
		if shift < 1e-8 && iter > 0 {
			break
		}
		for i := 0; i < n; i++ {
			mu := math.Exp(eta[i])
			z[i] = eta[i] + (y[i]-mu)/mu
		}
	}

	// GCV on the working scale: n * RSS / (n - edf)^2.
	edf = effectiveDF(a, xtx)
	rss := 0.0
	for i := 0; i < n; i++ {
		dlt := z[i] - eta[i]
		rss += dlt * dlt
	}
	den := float64(n) - edf
	if den < 1 {
		den = 1
	}
	gcv = float64(n) * rss / (den * den)
	return beta, gcv, edf, nil
}

// effectiveDF computes tr((XtX + S)^-1 XtX), the effective degrees of
// freedom of the penalized fit.
func effectiveDF(a, xtx *linalg.Matrix) float64 {
	cols := a.Cols
	tr := 0.0
	e := make([]float64, cols)
	for c := 0; c < cols; c++ {
		for i := range e {
			e[i] = xtx.At(i, c)
		}
		col, err := linalg.SolveSPD(a, e)
		if err != nil {
			return float64(cols)
		}
		tr += col[c]
	}
	return tr
}

// Predict returns the expected running time for one feature vector.
func (r *Regressor) Predict(x []float64) float64 {
	if r.beta == nil {
		return math.NaN()
	}
	row := r.designRow(x)
	eta := 0.0
	for j, v := range row {
		eta += v * r.beta[j]
	}
	if eta > 30 {
		eta = 30
	}
	return math.Exp(eta)
}

// designMatrix builds [1 | B_1(x_1) | ... | B_d(x_d)].
func (r *Regressor) designMatrix(x [][]float64) *linalg.Matrix {
	cols := 1
	for _, act := range r.active {
		if act {
			cols += r.opts.NumBasis
		}
	}
	m := linalg.New(len(x), cols)
	for i, row := range x {
		copy(m.Row(i), r.designRow(row))
	}
	return m
}

// designRow evaluates the design row for one input vector.
func (r *Regressor) designRow(x []float64) []float64 {
	cols := 1
	for _, act := range r.active {
		if act {
			cols += r.opts.NumBasis
		}
	}
	row := make([]float64, cols)
	row[0] = 1
	off := 1
	for j := range r.active {
		if !r.active[j] {
			continue
		}
		v := x[j]
		if v < r.lo[j] {
			v = r.lo[j]
		}
		if v > r.hi[j] {
			v = r.hi[j]
		}
		bsplineBasis(v, r.lo[j], r.hi[j], r.opts.NumBasis, row[off:off+r.opts.NumBasis])
		off += r.opts.NumBasis
	}
	return row
}

// penaltyTemplate assembles the block-diagonal second-difference penalty
// (one block per active feature) plus a tiny ridge on the smooth
// coefficients for identifiability (B-spline bases sum to one, which is
// collinear with the intercept).
func (r *Regressor) penaltyTemplate() *linalg.Matrix {
	nb := r.opts.NumBasis
	cols := 1
	for _, act := range r.active {
		if act {
			cols += nb
		}
	}
	pen := linalg.New(cols, cols)
	const ridge = 1e-7
	off := 1
	for j := range r.active {
		if !r.active[j] {
			continue
		}
		// D2' D2 for the block: D2 has rows (1, -2, 1).
		for k := 0; k < nb-2; k++ {
			idx := [3]int{off + k, off + k + 1, off + k + 2}
			w := [3]float64{1, -2, 1}
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					pen.Add(idx[a], idx[b], w[a]*w[b])
				}
			}
		}
		for k := 0; k < nb; k++ {
			pen.Add(off+k, off+k, ridge)
		}
		off += nb
	}
	return pen
}

// bsplineBasis evaluates the nb cubic B-spline basis functions on equally
// spaced knots spanning [lo, hi] at position v, writing them into out.
func bsplineBasis(v, lo, hi float64, nb int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	degree := 3
	nseg := nb - degree // number of interior segments
	h := (hi - lo) / float64(nseg)
	// Extended knot vector: t[i] = lo + (i-degree)*h for i = 0..nb+degree.
	knot := func(i int) float64 { return lo + float64(i-degree)*h }
	// Find the segment: v in [t[k], t[k+1]) with degree <= k <= nb-1.
	k := degree + int((v-lo)/h)
	if k > nb-1 {
		k = nb - 1
	}
	if k < degree {
		k = degree
	}
	// Cox-de Boor: iterate degrees, local triangular scheme.
	var nloc [4]float64
	nloc[0] = 1
	for deg := 1; deg <= degree; deg++ {
		saved := 0.0
		for r := 0; r < deg; r++ {
			tr := knot(k + r + 1)
			tl := knot(k + r + 1 - deg)
			var term float64
			if !floats.Exact(tr, tl) { // repeated knots are copied values, equal exactly
				term = nloc[r] / (tr - tl)
			}
			nloc[r] = saved + (tr-v)*term
			saved = (v - tl) * term
		}
		nloc[deg] = saved
	}
	// nloc[r] is N_{k-degree+r, degree}(v).
	for r := 0; r <= degree; r++ {
		idx := k - degree + r
		if idx >= 0 && idx < nb {
			out[idx] = nloc[r]
		}
	}
}
