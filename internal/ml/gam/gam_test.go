package gam

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

func TestBSplineBasisPartitionOfUnity(t *testing.T) {
	nb := 8
	out := make([]float64, nb)
	for _, v := range []float64{0, 0.1, 0.5, 0.77, 1} {
		bsplineBasis(v, 0, 1, nb, out)
		sum := 0.0
		for _, b := range out {
			if b < -1e-12 {
				t.Fatalf("negative basis value %v at %v", b, v)
			}
			sum += b
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("basis at %v sums to %v", v, sum)
		}
	}
}

func TestBSplineBasisLocality(t *testing.T) {
	nb := 10
	out := make([]float64, nb)
	bsplineBasis(0.05, 0, 1, nb, out)
	nonzero := 0
	for _, b := range out {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero > 4 {
		t.Errorf("cubic B-spline should have <= 4 active functions, got %d", nonzero)
	}
}

func TestGAMFitsSmoothMultiplicativeSurface(t *testing.T) {
	// y = exp(f1(a) + f2(b)) * noise — exactly a log-link additive model.
	rng := sim.NewRNG(9)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 5
		f := -12 + 0.5*math.Sin(a) + 0.3*b + 0.05*b*b
		x = append(x, []float64{a, b})
		y = append(y, math.Exp(f)*rng.LogNormal(0.05))
	}
	g := New()
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sumRel, n := 0.0, 0
	for a := 0.5; a < 10; a += 0.7 {
		for b := 0.25; b < 5; b += 0.5 {
			truth := math.Exp(-12 + 0.5*math.Sin(a) + 0.3*b + 0.05*b*b)
			got := g.Predict([]float64{a, b})
			sumRel += math.Abs(got-truth) / truth
			n++
		}
	}
	if rel := sumRel / float64(n); rel > 0.10 {
		t.Errorf("relative error %.3f on an additive surface", rel)
	}
}

func TestGCVSelectsFromGrid(t *testing.T) {
	rng := sim.NewRNG(11)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 10
		x = append(x, []float64{a})
		y = append(y, math.Exp(-10+math.Sin(a))*rng.LogNormal(0.1))
	}
	g := New()
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range DefaultOptions().Lambdas {
		if g.Lambda() == l {
			found = true
		}
	}
	if !found {
		t.Errorf("selected lambda %v not from the grid", g.Lambda())
	}
	if g.EDF() <= 1 || g.EDF() > float64(1+DefaultOptions().NumBasis) {
		t.Errorf("implausible EDF %v", g.EDF())
	}
}

func TestPredictClampsOutOfRange(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 1e-6*float64(1+i))
	}
	g := New()
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	inRange := g.Predict([]float64{49})
	beyond := g.Predict([]float64{490})
	if math.Abs(beyond-inRange)/inRange > 1e-9 {
		t.Errorf("out-of-range input should clamp: %v vs %v", beyond, inRange)
	}
	if p := g.Predict([]float64{-100}); !(p > 0) {
		t.Errorf("clamped-low prediction %v", p)
	}
}

func TestGAMRejectsBadInput(t *testing.T) {
	if err := New().Fit(nil, nil); err == nil {
		t.Error("empty input must fail")
	}
	if err := New().Fit([][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative response must fail (Gamma family)")
	}
}

func TestUnfittedPredictIsNaN(t *testing.T) {
	if !math.IsNaN(New().Predict([]float64{1})) {
		t.Error("unfitted model should return NaN")
	}
}
