package ml

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

// syntheticRuntime mimics a collective's cost surface: latency term scaled
// by log p plus a bandwidth term, with mild multiplicative noise.
func syntheticRuntime(logm, n, ppn float64, rng *sim.RNG) float64 {
	p := n * ppn
	m := math.Exp2(logm)
	t := 2e-6*math.Log2(p+1) + m*3e-10*math.Log2(p+1) + 1e-6
	if rng != nil {
		t *= rng.LogNormal(0.05)
	}
	return t
}

func syntheticData(n int, seed uint64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	var x [][]float64
	var y []float64
	nodes := []float64{4, 8, 16, 20, 24, 32, 36}
	ppns := []float64{1, 8, 16, 32}
	logms := []float64{0, 4, 8, 10, 12, 14, 16, 19, 20, 22}
	for len(x) < n {
		nd := nodes[rng.Intn(len(nodes))]
		pp := ppns[rng.Intn(len(ppns))]
		lm := logms[rng.Intn(len(logms))]
		x = append(x, []float64{lm, nd, pp})
		y = append(y, syntheticRuntime(lm, nd, pp, rng))
	}
	return x, y
}

// relError is the mean relative absolute error on a held-out grid.
func relError(t *testing.T, learner string) float64 {
	t.Helper()
	x, y := syntheticData(600, 1)
	r, err := New(learner)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Held-out: odd node counts not in training.
	sum, cnt := 0.0, 0
	for _, nd := range []float64{7, 13, 19, 27, 35} {
		for _, pp := range []float64{1, 8, 16, 32} {
			for _, lm := range []float64{0, 8, 12, 16, 20, 22} {
				truth := syntheticRuntime(lm, nd, pp, nil)
				got := r.Predict([]float64{lm, nd, pp})
				if math.IsNaN(got) || got <= 0 {
					t.Fatalf("%s: bad prediction %v", learner, got)
				}
				sum += math.Abs(got-truth) / truth
				cnt++
			}
		}
	}
	return sum / float64(cnt)
}

func TestLearnersInterpolateRuntimeSurface(t *testing.T) {
	// The paper's point: standard learners work out of the box. Each must
	// get within modest relative error on unseen node counts; the linear
	// baseline is expected to be much worse (that is the ablation story),
	// so it only gets a sanity bound.
	bounds := map[string]float64{
		"knn":     0.35,
		"gam":     0.30,
		"xgboost": 0.35,
		"rf":      0.50,
		"linear":  3.00,
	}
	for learner, bound := range bounds {
		e := relError(t, learner)
		t.Logf("%s: mean relative error %.3f", learner, e)
		if e > bound {
			t.Errorf("%s: error %.3f exceeds bound %.3f", learner, e, bound)
		}
	}
}

func TestLinearIsWorstLearner(t *testing.T) {
	// Reproduces the paper's observation that linear regression fails on
	// this problem while the chosen learners do not.
	linErr := relError(t, "linear")
	for _, learner := range PaperLearners() {
		if e := relError(t, learner); e >= linErr {
			t.Errorf("%s (%.3f) should beat linear regression (%.3f)", learner, e, linErr)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 5 {
		t.Errorf("expected 5 learners, got %v", Names())
	}
	if _, err := New("svm"); err == nil {
		t.Error("expected error for unknown learner")
	}
	for _, n := range PaperLearners() {
		if _, err := New(n); err != nil {
			t.Errorf("paper learner %s missing: %v", n, err)
		}
	}
}

func TestValidation(t *testing.T) {
	for _, name := range Names() {
		r, _ := New(name)
		if err := r.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty fit must fail", name)
		}
		r, _ = New(name)
		if err := r.Fit([][]float64{{1}, {2}}, []float64{1, -1}); err == nil {
			t.Errorf("%s: negative target must fail", name)
		}
		r, _ = New(name)
		if err := r.Fit([][]float64{{1}, {2, 3}}, []float64{1, 1}); err == nil {
			t.Errorf("%s: ragged rows must fail", name)
		}
	}
}

func TestLearnersDeterministic(t *testing.T) {
	x, y := syntheticData(200, 2)
	probe := []float64{12, 13, 8}
	for _, name := range Names() {
		a, _ := New(name)
		b, _ := New(name)
		if err := a.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pa, pb := a.Predict(probe), b.Predict(probe); pa != pb {
			t.Errorf("%s: nondeterministic predictions %v vs %v", name, pa, pb)
		}
	}
}

func TestLearnersHandleConstantFeature(t *testing.T) {
	// ppn constant in the training data (a realistic degenerate slice).
	rng := sim.NewRNG(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 120; i++ {
		lm := float64(i % 12)
		x = append(x, []float64{lm, 16, 8})
		y = append(y, syntheticRuntime(lm, 16, 8, rng))
	}
	for _, name := range Names() {
		r, _ := New(name)
		if err := r.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p := r.Predict([]float64{6, 16, 8}); math.IsNaN(p) || p <= 0 {
			t.Errorf("%s: bad prediction %v with constant features", name, p)
		}
	}
}

func TestLearnersSmallTrainingSet(t *testing.T) {
	x, y := syntheticData(12, 7)
	for _, name := range Names() {
		r, _ := New(name)
		if err := r.Fit(x, y); err != nil {
			t.Fatalf("%s with 12 samples: %v", name, err)
		}
		if p := r.Predict(x[0]); math.IsNaN(p) || p <= 0 {
			t.Errorf("%s: bad prediction %v on tiny training set", name, p)
		}
	}
}
