// Package tree implements CART-style regression trees, the shared substrate
// of the Random Forest and XGBoost learners. Trees can be grown either by
// variance reduction on raw targets (random forest) or by the second-order
// gain criterion on gradient/hessian statistics (gradient boosting).
package tree

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/sim"
)

// Options controls tree growth.
type Options struct {
	MaxDepth int     // maximum depth; root is depth 0
	MinLeaf  int     // minimum samples per leaf (variance mode)
	Lambda   float64 // L2 regularization on leaf values (grad/hess mode)
	Gamma    float64 // minimum gain to split (grad/hess mode)
	MinChild float64 // minimum hessian sum per child (grad/hess mode)
	// MTry > 0 samples that many candidate features per node (random
	// forest decorrelation); 0 considers all features.
	MTry int
	// RNG drives feature subsampling when MTry > 0.
	RNG *sim.RNG
}

type node struct {
	feature int // -1 for leaf
	thresh  float64
	left    int32
	right   int32
	value   float64
}

// Tree is a fitted regression tree.
type Tree struct {
	nodes []node
}

// Predict returns the tree's response for a feature vector.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the number of nodes, a rough model-complexity measure.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Node is the exported form of one tree node, used by the snapshot codec.
// Feature < 0 marks a leaf carrying Value; an internal node routes
// x[Feature] <= Thresh to Left, else Right.
type Node struct {
	Feature int32
	Thresh  float64
	Left    int32
	Right   int32
	Value   float64
}

// State exports the fitted tree as a flat node list in preorder (the order
// grow appended them), suitable for serialization.
func (t *Tree) State() []Node {
	out := make([]Node, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = Node{Feature: int32(n.feature), Thresh: n.thresh,
			Left: n.left, Right: n.right, Value: n.value}
	}
	return out
}

// FromState rebuilds a tree from an exported node list, validating the
// structural invariants the builder guarantees — both children of an
// internal node point strictly forward and stay in range — so a corrupted
// snapshot can never make Predict loop forever or index out of bounds.
func FromState(nodes []Node) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree: empty node list")
	}
	out := make([]node, len(nodes))
	for i, n := range nodes {
		if n.Feature >= 0 {
			if int(n.Left) <= i || int(n.Left) >= len(nodes) ||
				int(n.Right) <= i || int(n.Right) >= len(nodes) {
				return nil, fmt.Errorf("tree: node %d has out-of-order children (%d, %d) of %d nodes",
					i, n.Left, n.Right, len(nodes))
			}
		}
		out[i] = node{feature: int(n.Feature), thresh: n.Thresh,
			left: n.Left, right: n.Right, value: n.Value}
	}
	return &Tree{nodes: out}, nil
}

// builder carries the growth state.
type builder struct {
	x    [][]float64
	opts Options
	// grad/hess mode:
	g, h []float64
	// variance mode:
	y []float64

	nodes []node
}

// BuildVariance grows a tree minimizing squared error of y over the sample
// index set idx.
func BuildVariance(x [][]float64, y []float64, idx []int, opts Options) *Tree {
	if opts.MinLeaf < 1 {
		opts.MinLeaf = 1
	}
	b := &builder{x: x, y: y, opts: opts}
	b.grow(idx, 0, false)
	return &Tree{nodes: b.nodes}
}

// BuildGradHess grows a tree maximizing the XGBoost split gain for the
// gradient/hessian statistics over idx. Leaf values are -G/(H+lambda).
func BuildGradHess(x [][]float64, g, h []float64, idx []int, opts Options) *Tree {
	if opts.MinChild <= 0 {
		opts.MinChild = 1e-12
	}
	b := &builder{x: x, g: g, h: h, opts: opts}
	b.grow(idx, 0, true)
	return &Tree{nodes: b.nodes}
}

// grow appends the subtree for idx and returns its node index.
func (b *builder) grow(idx []int, depth int, gradMode bool) int32 {
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: -1})

	if gradMode {
		var G, H float64
		for _, i := range idx {
			G += b.g[i]
			H += b.h[i]
		}
		b.nodes[me].value = -G / (H + b.opts.Lambda)
		if depth >= b.opts.MaxDepth || len(idx) < 2 {
			return me
		}
		feat, thresh, ok := b.bestSplitGrad(idx, G, H)
		if !ok {
			return me
		}
		left, right := partition(b.x, idx, feat, thresh)
		b.nodes[me].feature = feat
		b.nodes[me].thresh = thresh
		l := b.grow(left, depth+1, true)
		r := b.grow(right, depth+1, true)
		b.nodes[me].left = l
		b.nodes[me].right = r
		return me
	}

	var sum float64
	for _, i := range idx {
		sum += b.y[i]
	}
	b.nodes[me].value = sum / float64(len(idx))
	if depth >= b.opts.MaxDepth || len(idx) < 2*b.opts.MinLeaf {
		return me
	}
	feat, thresh, ok := b.bestSplitVar(idx, sum)
	if !ok {
		return me
	}
	left, right := partition(b.x, idx, feat, thresh)
	b.nodes[me].feature = feat
	b.nodes[me].thresh = thresh
	l := b.grow(left, depth+1, false)
	r := b.grow(right, depth+1, false)
	b.nodes[me].left = l
	b.nodes[me].right = r
	return me
}

// features returns the candidate feature set for one node.
func (b *builder) features() []int {
	d := len(b.x[0])
	if b.opts.MTry <= 0 || b.opts.MTry >= d || b.opts.RNG == nil {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Partial Fisher-Yates over feature indices.
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < b.opts.MTry; i++ {
		j := i + b.opts.RNG.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:b.opts.MTry]
}

type featSorter struct {
	vals []float64
	idx  []int
}

func (s *featSorter) Len() int           { return len(s.idx) }
func (s *featSorter) Less(i, j int) bool { return s.vals[i] < s.vals[j] }
func (s *featSorter) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}

// bestSplitVar finds the variance-reduction-optimal (feature, threshold).
func (b *builder) bestSplitVar(idx []int, total float64) (int, float64, bool) {
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	n := len(idx)
	vals := make([]float64, n)
	order := make([]int, n)
	parentScore := total * total / float64(n)
	for _, f := range b.features() {
		copy(order, idx)
		for i, s := range order {
			vals[i] = b.x[s][f]
		}
		sort.Sort(&featSorter{vals, order})
		sumL := 0.0
		for i := 0; i < n-1; i++ {
			sumL += b.y[order[i]]
			if floats.Exact(vals[i], vals[i+1]) { // duplicate sort keys, copied not computed
				continue
			}
			nl, nr := i+1, n-i-1
			if nl < b.opts.MinLeaf || nr < b.opts.MinLeaf {
				continue
			}
			sumR := total - sumL
			gain := sumL*sumL/float64(nl) + sumR*sumR/float64(nr) - parentScore
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[i] + vals[i+1]) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

// bestSplitGrad finds the XGBoost-gain-optimal (feature, threshold).
func (b *builder) bestSplitGrad(idx []int, G, H float64) (int, float64, bool) {
	lambda := b.opts.Lambda
	parent := G * G / (H + lambda)
	bestGain := b.opts.Gamma
	bestFeat, bestThresh := -1, 0.0
	n := len(idx)
	vals := make([]float64, n)
	order := make([]int, n)
	for _, f := range b.features() {
		copy(order, idx)
		for i, s := range order {
			vals[i] = b.x[s][f]
		}
		sort.Sort(&featSorter{vals, order})
		gl, hl := 0.0, 0.0
		for i := 0; i < n-1; i++ {
			gl += b.g[order[i]]
			hl += b.h[order[i]]
			if floats.Exact(vals[i], vals[i+1]) { // duplicate sort keys, copied not computed
				continue
			}
			gr, hr := G-gl, H-hl
			if hl < b.opts.MinChild || hr < b.opts.MinChild {
				continue
			}
			gain := gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parent
			if gain > bestGain+1e-12 && !math.IsNaN(gain) {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[i] + vals[i+1]) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

func partition(x [][]float64, idx []int, feat int, thresh float64) (left, right []int) {
	for _, i := range idx {
		if x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}
