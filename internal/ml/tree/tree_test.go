package tree

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

func gridData() ([][]float64, []float64) {
	var x [][]float64
	var y []float64
	for a := 0.0; a < 10; a++ {
		for b := 0.0; b < 10; b++ {
			x = append(x, []float64{a, b})
			v := 1.0
			if a >= 5 {
				v = 3.0
			}
			if b >= 7 {
				v += 10
			}
			y = append(y, v)
		}
	}
	return x, y
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestVarianceTreeRecoversPiecewiseConstant(t *testing.T) {
	x, y := gridData()
	tr := BuildVariance(x, y, allIdx(len(x)), Options{MaxDepth: 4, MinLeaf: 1})
	for i := range x {
		if got := tr.Predict(x[i]); math.Abs(got-y[i]) > 1e-9 {
			t.Fatalf("x=%v: predict %v want %v", x[i], got, y[i])
		}
	}
}

func TestDepthZeroIsMean(t *testing.T) {
	x, y := gridData()
	tr := BuildVariance(x, y, allIdx(len(x)), Options{MaxDepth: 0})
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if got := tr.Predict([]float64{0, 0}); math.Abs(got-mean) > 1e-9 {
		t.Errorf("stump value %v, want mean %v", got, mean)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("depth-0 tree has %d nodes", tr.NumNodes())
	}
}

func TestMinLeafRespected(t *testing.T) {
	x, y := gridData()
	tr := BuildVariance(x, y, allIdx(len(x)), Options{MaxDepth: 10, MinLeaf: 30})
	// With MinLeaf 30 of 100 samples, depth is severely limited; count
	// leaves and ensure no leaf got fewer than 30 training points by
	// checking the tree is small.
	if tr.NumNodes() > 7 {
		t.Errorf("tree too large for MinLeaf=30: %d nodes", tr.NumNodes())
	}
}

func TestGradHessLeafValue(t *testing.T) {
	// Squared loss: g = pred0 - y (pred0 = 0), h = 1. A depth-0 tree's
	// value must be mean(y) with lambda = 0.
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 2, 6}
	g := make([]float64, 3)
	h := make([]float64, 3)
	for i := range y {
		g[i] = -y[i]
		h[i] = 1
	}
	tr := BuildGradHess(x, g, h, allIdx(3), Options{MaxDepth: 0, Lambda: 0})
	if got := tr.Predict([]float64{0}); math.Abs(got-3) > 1e-9 {
		t.Errorf("leaf = %v, want 3", got)
	}
	// With large lambda the leaf shrinks toward zero.
	tr = BuildGradHess(x, g, h, allIdx(3), Options{MaxDepth: 0, Lambda: 1e9})
	if got := tr.Predict([]float64{0}); math.Abs(got) > 1e-6 {
		t.Errorf("shrunk leaf = %v", got)
	}
}

func TestGradHessSplitsOnInformativeFeature(t *testing.T) {
	// Feature 1 is noise; feature 0 separates the targets.
	rng := sim.NewRNG(1)
	var x [][]float64
	var g, h []float64
	for i := 0; i < 200; i++ {
		f0 := float64(i % 2)
		x = append(x, []float64{f0, rng.Float64()})
		g = append(g, -(f0*10 + rng.Norm()*0.01))
		h = append(h, 1)
	}
	tr := BuildGradHess(x, g, h, allIdx(len(x)), Options{MaxDepth: 1, Lambda: 1})
	lo := tr.Predict([]float64{0, 0.5})
	hi := tr.Predict([]float64{1, 0.5})
	if !(hi > lo+5) {
		t.Errorf("split failed: lo=%v hi=%v", lo, hi)
	}
}

func TestGammaBlocksWeakSplits(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	g := []float64{-1, -1.01, -1.02, -1.03} // nearly constant
	h := []float64{1, 1, 1, 1}
	tr := BuildGradHess(x, g, h, allIdx(4), Options{MaxDepth: 3, Lambda: 1, Gamma: 1})
	if tr.NumNodes() != 1 {
		t.Errorf("gamma should prevent splitting, got %d nodes", tr.NumNodes())
	}
}

func TestMTrySubsampling(t *testing.T) {
	// With MTry=1 and a fixed RNG, the tree still fits something sensible
	// and never inspects out-of-range features.
	x, y := gridData()
	tr := BuildVariance(x, y, allIdx(len(x)), Options{MaxDepth: 6, MinLeaf: 1, MTry: 1, RNG: sim.NewRNG(3)})
	mse := 0.0
	for i := range x {
		d := tr.Predict(x[i]) - y[i]
		mse += d * d
	}
	mse /= float64(len(x))
	full := BuildVariance(x, y, allIdx(len(x)), Options{MaxDepth: 6, MinLeaf: 1})
	fullMSE := 0.0
	for i := range x {
		d := full.Predict(x[i]) - y[i]
		fullMSE += d * d
	}
	fullMSE /= float64(len(x))
	if fullMSE > mse+1e-9 {
		t.Errorf("full tree (%v) should fit at least as well as MTry=1 (%v)", fullMSE, mse)
	}
}

func TestConstantFeaturesNoSplit(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	y := []float64{1, 2, 3}
	tr := BuildVariance(x, y, allIdx(3), Options{MaxDepth: 5, MinLeaf: 1})
	if tr.NumNodes() != 1 {
		t.Errorf("constant features must yield a stump, got %d nodes", tr.NumNodes())
	}
}
