// Package ml defines the regression-learner interface of the tuning
// framework and a registry of the available learners: the three the paper
// settles on (XGBoost, GAM, KNN) and the ones it rejected but which remain
// useful for ablation (random forest, linear regression).
package ml

import (
	"fmt"
	"sort"
)

// Regressor is a supervised learner predicting a positive running time from
// a feature vector.
type Regressor interface {
	// Fit trains on rows x (one feature vector per sample) and targets y
	// (running times, strictly positive).
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimated running time for one feature vector.
	Predict(x []float64) float64
}

// Factory creates a fresh, unfitted Regressor with the out-of-the-box
// hyper-parameters used throughout the paper (no tuning, by design).
type Factory func() Regressor

var registry = map[string]Factory{}

// Register adds a learner factory under a name; called from init functions
// of the learner subpackages via Use.
func Register(name string, f Factory) { registry[name] = f }

// New returns a fresh regressor of the named kind.
func New(name string) (Regressor, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ml: unknown learner %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered learners, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperLearners returns the three learners evaluated in the paper, in the
// order of Table IV.
func PaperLearners() []string { return []string{"knn", "gam", "xgboost"} }

func validate(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("ml: bad training set: %d rows, %d targets", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return fmt.Errorf("ml: empty feature vectors")
	}
	for i, row := range x {
		if len(row) != d {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, v := range y {
		if !(v > 0) {
			return fmt.Errorf("ml: target %d is %g; running times must be positive", i, v)
		}
	}
	return nil
}
