// Package linreg implements ordinary least squares on log running times —
// the learner the paper reports as failing ("a regression based on linear
// models, as expected, did not work"). It is kept as the ablation baseline
// that demonstrates why the non-linear learners are necessary.
package linreg

import (
	"fmt"
	"math"

	"mpicollpred/internal/ml/linalg"
)

// Regressor is a fitted linear model on the log-time scale.
type Regressor struct {
	beta []float64 // intercept first
}

// New returns an OLS regressor.
func New() *Regressor { return &Regressor{} }

// State is the exported fitted-model state, used by the snapshot codec.
type State struct {
	Beta []float64
}

// State exports the fitted model.
func (r *Regressor) State() State { return State{Beta: r.beta} }

// FromState rebuilds a fitted model.
func FromState(s State) (*Regressor, error) {
	if len(s.Beta) < 1 {
		return nil, fmt.Errorf("linreg: snapshot has no coefficients")
	}
	return &Regressor{beta: s.Beta}, nil
}

// Fit solves the normal equations for log(y) ~ 1 + x.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("linreg: bad training set (%d rows, %d targets)", len(x), len(y))
	}
	d := len(x[0])
	design := linalg.New(len(x), d+1)
	for i, row := range x {
		dr := design.Row(i)
		dr[0] = 1
		copy(dr[1:], row)
	}
	logy := make([]float64, len(y))
	for i, v := range y {
		if !(v > 0) {
			return fmt.Errorf("linreg: target %d = %g; must be positive", i, v)
		}
		logy[i] = math.Log(v)
	}
	a := design.AtA(nil)
	b := design.AtV(logy, nil)
	beta, err := linalg.SolveSPD(a, b)
	if err != nil {
		return fmt.Errorf("linreg: %w", err)
	}
	r.beta = beta
	return nil
}

// Predict returns exp(beta0 + beta·x).
func (r *Regressor) Predict(x []float64) float64 {
	if r.beta == nil {
		return math.NaN()
	}
	eta := r.beta[0]
	for j, v := range x {
		eta += r.beta[j+1] * v
	}
	if eta > 30 {
		eta = 30
	}
	return math.Exp(eta)
}
