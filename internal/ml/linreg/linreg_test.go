package linreg

import (
	"math"
	"testing"
)

func TestRecoversLogLinearModel(t *testing.T) {
	// y = exp(-10 + 0.5 a - 0.2 b): exactly representable.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b})
			y = append(y, math.Exp(-10+0.5*a-0.2*b))
		}
	}
	r := New()
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if rel := math.Abs(r.Predict(x[i])-y[i]) / y[i]; rel > 1e-6 {
			t.Fatalf("x=%v: rel err %v", x[i], rel)
		}
	}
}

func TestFailsOnNonLinearSurface(t *testing.T) {
	// The paper's point: a step-like runtime surface is not log-linear.
	var x [][]float64
	var y []float64
	for i := 0; i < 64; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		t := 1e-6
		if i >= 32 {
			t = 64e-6 // protocol switch
		}
		y = append(y, t)
	}
	r := New()
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range x {
		if rel := math.Abs(r.Predict(x[i])-y[i]) / y[i]; rel > worst {
			worst = rel
		}
	}
	if worst < 0.5 {
		t.Errorf("linear model unexpectedly fit a step function (worst rel err %.2f)", worst)
	}
}

func TestUnfittedIsNaN(t *testing.T) {
	if !math.IsNaN(New().Predict([]float64{1})) {
		t.Error("unfitted model should return NaN")
	}
}

func TestRejectsBadInput(t *testing.T) {
	if err := New().Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
	if err := New().Fit([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("non-positive target must fail")
	}
}
