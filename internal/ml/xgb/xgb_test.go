package xgb

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

func noisySurface(n int, seed uint64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		a := rng.Float64() * 20
		b := rng.Float64() * 36
		t := 1e-6 * (1 + a*a/40 + b/6) * rng.LogNormal(0.05)
		x = append(x, []float64{a, b})
		y = append(y, t)
	}
	return x, y
}

func TestObjectivesAllLearn(t *testing.T) {
	x, y := noisySurface(400, 3)
	for _, obj := range []Objective{Tweedie, Gamma, SquaredLog} {
		opts := DefaultOptions()
		opts.Objective = obj
		opts.Rounds = 80
		r := NewWith(opts)
		if err := r.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		// In-sample relative error should be small.
		sumRel := 0.0
		for i := range x {
			sumRel += math.Abs(r.Predict(x[i])-y[i]) / y[i]
		}
		if rel := sumRel / float64(len(x)); rel > 0.15 {
			t.Errorf("%s: in-sample relative error %.3f", obj, rel)
		}
	}
}

func TestPredictionsPositive(t *testing.T) {
	x, y := noisySurface(100, 4)
	r := New()
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][]float64{{0, 0}, {20, 36}, {-5, 100}} {
		if p := r.Predict(probe); !(p > 0) || math.IsInf(p, 0) {
			t.Errorf("prediction %v for %v", p, probe)
		}
	}
}

func TestBaseScoreIsLogMean(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 2, 2, 2}
	opts := DefaultOptions()
	opts.Rounds = 1
	r := NewWith(opts)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Constant target: prediction must be (nearly) exactly the constant.
	if p := r.Predict([]float64{2.5}); math.Abs(p-2) > 0.2 {
		t.Errorf("constant-target prediction %v", p)
	}
}

func TestEarlyStopOnConvergence(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{1, 1}
	r := New() // 200 rounds requested
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r.NumTrees() >= 200 {
		t.Errorf("converged fit should stop early, used %d trees", r.NumTrees())
	}
}

func TestRejectsNonPositiveTargets(t *testing.T) {
	if err := New().Fit([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("zero target must be rejected")
	}
	if err := New().Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestTweedieGradientSigns(t *testing.T) {
	// At the optimum f = log(y), the Tweedie gradient must vanish.
	r := NewWith(DefaultOptions())
	y := []float64{0.001}
	score := []float64{math.Log(0.001)}
	g := make([]float64, 1)
	h := make([]float64, 1)
	r.gradients(y, score, g, h)
	if math.Abs(g[0]) > 1e-12 {
		t.Errorf("gradient at optimum = %v", g[0])
	}
	if h[0] <= 0 {
		t.Errorf("hessian must be positive, got %v", h[0])
	}
	// Below the optimum the gradient must push predictions up (negative g).
	score[0] = math.Log(0.001) - 1
	r.gradients(y, score, g, h)
	if g[0] >= 0 {
		t.Errorf("gradient below optimum should be negative, got %v", g[0])
	}
}
