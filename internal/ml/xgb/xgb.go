// Package xgb implements gradient-boosted regression trees in the style of
// XGBoost: second-order (gradient/hessian) tree growth with L2-regularized
// leaf weights, shrinkage, and a log link. The paper trains for 200 rounds
// with the Tweedie objective ("since a regression based on linear models,
// as expected, did not work, we use the Tweedie regression; the Gamma
// regression also worked well").
package xgb

import (
	"fmt"
	"math"

	"mpicollpred/internal/ml/tree"
)

// Objective selects the loss. All objectives use the log link, so raw tree
// scores live on log-time scale and predictions are exp(score) — the key to
// handling targets spanning six orders of magnitude.
type Objective string

const (
	// Tweedie is the paper's default objective (variance power rho).
	Tweedie Objective = "tweedie"
	// Gamma deviance; the paper notes it "also worked well".
	Gamma Objective = "gamma"
	// SquaredLog is plain squared error on log targets, for ablation.
	SquaredLog Objective = "squaredlog"
)

// Options are the out-of-the-box hyper-parameters (no tuning, per the
// paper's philosophy).
type Options struct {
	Rounds     int
	Eta        float64
	MaxDepth   int
	Lambda     float64
	MinChild   float64
	Objective  Objective
	TweedieRho float64
}

// DefaultOptions mirrors the paper's setup: 200 rounds, Tweedie objective,
// XGBoost defaults otherwise.
func DefaultOptions() Options {
	return Options{
		Rounds:     200,
		Eta:        0.3,
		MaxDepth:   6,
		Lambda:     1.0,
		MinChild:   1e-6,
		Objective:  Tweedie,
		TweedieRho: 1.5,
	}
}

// Regressor is a boosted ensemble.
type Regressor struct {
	opts  Options
	base  float64 // initial raw score: log(mean y)
	trees []*tree.Tree
}

// New returns an XGBoost-style regressor with the paper's defaults.
func New() *Regressor { return &Regressor{opts: DefaultOptions()} }

// NewWith returns a regressor with explicit options.
func NewWith(opts Options) *Regressor {
	if opts.Rounds < 1 {
		opts.Rounds = 1
	}
	return &Regressor{opts: opts}
}

// State is the exported fitted-ensemble state, used by the snapshot codec.
type State struct {
	Opts  Options
	Base  float64
	Trees [][]tree.Node
}

// State exports the fitted ensemble.
func (r *Regressor) State() State {
	s := State{Opts: r.opts, Base: r.base, Trees: make([][]tree.Node, len(r.trees))}
	for i, t := range r.trees {
		s.Trees[i] = t.State()
	}
	return s
}

// FromState rebuilds a fitted ensemble; tree.FromState validates every
// tree's structure.
func FromState(s State) (*Regressor, error) {
	r := &Regressor{opts: s.Opts, base: s.Base, trees: make([]*tree.Tree, len(s.Trees))}
	for i, nodes := range s.Trees {
		t, err := tree.FromState(nodes)
		if err != nil {
			return nil, fmt.Errorf("xgb: snapshot tree %d: %w", i, err)
		}
		r.trees[i] = t
	}
	return r, nil
}

// Fit trains the ensemble.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("xgb: bad training set (%d rows, %d targets)", len(x), len(y))
	}
	for i, v := range y {
		if !(v > 0) {
			return fmt.Errorf("xgb: target %d = %g; must be positive for the %s objective", i, v, r.opts.Objective)
		}
	}
	n := len(x)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	r.base = math.Log(mean)
	r.trees = r.trees[:0]

	score := make([]float64, n) // raw (log-scale) predictions
	for i := range score {
		score[i] = r.base
	}
	g := make([]float64, n)
	h := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	topt := tree.Options{MaxDepth: r.opts.MaxDepth, Lambda: r.opts.Lambda, MinChild: r.opts.MinChild}

	for round := 0; round < r.opts.Rounds; round++ {
		r.gradients(y, score, g, h)
		t := tree.BuildGradHess(x, g, h, idx, topt)
		r.trees = append(r.trees, t)
		for i := range score {
			score[i] += r.opts.Eta * t.Predict(x[i])
		}
		if t.NumNodes() == 1 && round > 0 {
			// Pure-stump round: the ensemble has converged; further
			// rounds only repeat the same shrinkage step.
			leaf := t.Predict(x[0])
			if math.Abs(leaf) < 1e-12 {
				break
			}
		}
	}
	return nil
}

// gradients fills g and h for the configured objective at the current raw
// scores (log link).
func (r *Regressor) gradients(y, score, g, h []float64) {
	switch r.opts.Objective {
	case Tweedie:
		rho := r.opts.TweedieRho
		for i := range y {
			a := math.Exp((1 - rho) * score[i])
			b := math.Exp((2 - rho) * score[i])
			g[i] = -y[i]*a + b
			h[i] = -(1-rho)*y[i]*a + (2-rho)*b
		}
	case Gamma:
		for i := range y {
			e := y[i] * math.Exp(-score[i])
			g[i] = 1 - e
			h[i] = e
		}
	default: // SquaredLog
		for i := range y {
			g[i] = score[i] - math.Log(y[i])
			h[i] = 1
		}
	}
}

// Predict returns exp(raw score) for the feature vector.
func (r *Regressor) Predict(x []float64) float64 {
	s := r.base
	for _, t := range r.trees {
		s += r.opts.Eta * t.Predict(x)
	}
	return math.Exp(s)
}

// NumTrees returns the number of boosted rounds actually performed.
func (r *Regressor) NumTrees() int { return len(r.trees) }
