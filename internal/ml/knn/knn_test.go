package knn

import (
	"math"
	"testing"
)

func TestExactNeighborsMean(t *testing.T) {
	// k=2 on a 1-D line: prediction at 0.1 must average the two nearest
	// targets.
	r := NewK(2)
	x := [][]float64{{0}, {1}, {10}, {11}}
	y := []float64{2, 4, 100, 200}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{0.1}); got != 3 {
		t.Errorf("predict = %v, want 3", got)
	}
	if got := r.Predict([]float64{10.6}); got != 150 {
		t.Errorf("predict = %v, want 150", got)
	}
}

func TestScalingMakesFeaturesComparable(t *testing.T) {
	// Feature 0 spans millions (like message sizes), feature 1 spans units
	// (like node counts). Without scaling, feature 1 would be invisible.
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		m := float64((i % 4) * 1000000)
		n := float64(i % 10)
		x = append(x, []float64{m, n})
		y = append(y, n*10+1) // depends ONLY on the small feature
	}
	r := NewK(3)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Probe with an m value present in training and an extreme n.
	got := r.Predict([]float64{2000000, 9})
	if math.Abs(got-91) > 15 {
		t.Errorf("scaled KNN should track the small feature: got %v, want ~91", got)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	r := NewK(10)
	if err := r.Fit([][]float64{{1}, {2}}, []float64{4, 6}); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{1.5}); got != 5 {
		t.Errorf("k>n should average everything: %v", got)
	}
}

func TestDefaultKIsFive(t *testing.T) {
	r := New()
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, float64(i))
	}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Neighbors of 0 are {0,1,2,3,4} -> mean 2.
	if got := r.Predict([]float64{0}); got != 2 {
		t.Errorf("k=5 mean = %v, want 2", got)
	}
}

func TestConstantFeatureIgnored(t *testing.T) {
	r := NewK(1)
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	y := []float64{1, 2, 3}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{5, 2.1}); got != 2 {
		t.Errorf("nearest by informative feature = %v, want 2", got)
	}
}

func TestUnfittedIsNaN(t *testing.T) {
	if !math.IsNaN(New().Predict([]float64{1})) {
		t.Error("unfitted KNN should return NaN")
	}
}

func TestInsertionKeepsKSmallest(t *testing.T) {
	// Regression test for the bounded-insertion logic: feed points in an
	// order that exercises mid-list insertion.
	r := NewK(3)
	x := [][]float64{{10}, {1}, {7}, {2}, {8}, {3}}
	y := []float64{1000, 10, 700, 20, 800, 30}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{0}); got != 20 { // neighbors 1,2,3
		t.Errorf("k-smallest selection broken: %v, want 20", got)
	}
}
