// Package knn implements k-nearest-neighbour regression with standardized
// (z-scaled) inputs, matching the paper's caret setup: K = 5, Euclidean
// distance, mean of the neighbours' running times. The paper scales inputs
// because the message size otherwise dominates the distance metric.
package knn

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/floats"
)

// Regressor is a KNN regression model.
type Regressor struct {
	k     int
	mean  []float64
	scale []float64
	x     [][]float64 // scaled copies of the training rows
	y     []float64
}

// New returns a KNN regressor with the paper's default K = 5.
func New() *Regressor { return &Regressor{k: 5} }

// NewK returns a KNN regressor with a custom neighbourhood size.
func NewK(k int) *Regressor {
	if k < 1 {
		k = 1
	}
	return &Regressor{k: k}
}

// State is the exported fitted-model state, used by the snapshot codec.
// X holds the z-scaled training rows exactly as Predict consumes them, so a
// restored model computes bit-identical distances.
type State struct {
	K           int
	Mean, Scale []float64
	X           [][]float64
	Y           []float64
}

// State exports the fitted model.
func (r *Regressor) State() State {
	return State{K: r.k, Mean: r.mean, Scale: r.scale, X: r.x, Y: r.y}
}

// FromState rebuilds a fitted model, validating the shapes so a corrupted
// snapshot cannot index out of bounds at prediction time.
func FromState(s State) (*Regressor, error) {
	if s.K < 1 {
		return nil, fmt.Errorf("knn: snapshot k = %d", s.K)
	}
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return nil, fmt.Errorf("knn: snapshot has %d rows but %d targets", len(s.X), len(s.Y))
	}
	d := len(s.Mean)
	if len(s.Scale) != d {
		return nil, fmt.Errorf("knn: snapshot has %d means but %d scales", d, len(s.Scale))
	}
	for i, row := range s.X {
		if len(row) != d {
			return nil, fmt.Errorf("knn: snapshot row %d has %d features, want %d", i, len(row), d)
		}
	}
	return &Regressor{k: s.K, mean: s.Mean, scale: s.Scale, x: s.X, y: s.Y}, nil
}

// Fit stores the (scaled) training set.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("knn: bad training set (%d rows, %d targets)", len(x), len(y))
	}
	d := len(x[0])
	r.mean = make([]float64, d)
	r.scale = make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			r.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range r.mean {
		r.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - r.mean[j]
			r.scale[j] += dv * dv
		}
	}
	for j := range r.scale {
		r.scale[j] = math.Sqrt(r.scale[j] / n)
		if floats.Zero(r.scale[j]) {
			r.scale[j] = 1 // constant feature: contributes nothing
		}
	}
	r.x = make([][]float64, len(x))
	for i, row := range x {
		s := make([]float64, d)
		for j, v := range row {
			s[j] = (v - r.mean[j]) / r.scale[j]
		}
		r.x[i] = s
	}
	r.y = append([]float64(nil), y...)
	return nil
}

// Predict returns the mean running time of the k nearest training samples.
func (r *Regressor) Predict(x []float64) float64 {
	if len(r.x) == 0 {
		return math.NaN()
	}
	q := make([]float64, len(x))
	for j, v := range x {
		q[j] = (v - r.mean[j]) / r.scale[j]
	}
	k := r.k
	if k > len(r.x) {
		k = len(r.x)
	}
	// Track the k smallest distances with a simple bounded insertion —
	// k is 5, so this beats sorting all n distances.
	type cand struct {
		d float64
		y float64
	}
	best := make([]cand, 0, k)
	worst := math.Inf(1)
	for i, row := range r.x {
		d := 0.0
		for j := range q {
			dv := q[j] - row[j]
			d += dv * dv
		}
		if len(best) < k {
			best = append(best, cand{d, r.y[i]})
			if len(best) == k {
				sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
				worst = best[k-1].d
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Insert in order, dropping the current worst.
		pos := sort.Search(k, func(a int) bool { return best[a].d > d })
		copy(best[pos+1:], best[pos:k-1])
		best[pos] = cand{d, r.y[i]}
		worst = best[k-1].d
	}
	sum := 0.0
	for _, c := range best {
		sum += c.y
	}
	return sum / float64(len(best))
}
