// Package linalg provides the small dense linear-algebra kernel needed by
// the GAM and linear-regression learners: row-major matrices, symmetric
// products, and Cholesky-based SPD solves.
package linalg

import (
	"fmt"
	"math"

	"mpicollpred/internal/floats"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// New returns a zero Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec returns m · x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// AtA returns mᵀ·m (the Gram matrix), optionally weighted: when w is
// non-nil, returns mᵀ·diag(w)·m.
func (m *Matrix) AtA(w []float64) *Matrix {
	out := New(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		for a := 0; a < m.Cols; a++ {
			va := wi * row[a]
			if floats.Exact(va, 0) { // skipping exact zeros never changes the sum
				continue
			}
			outRow := out.Data[a*m.Cols:]
			for b := a; b < m.Cols; b++ {
				outRow[b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < m.Cols; a++ {
		for b := a + 1; b < m.Cols; b++ {
			out.Set(b, a, out.At(a, b))
		}
	}
	return out
}

// AtV returns mᵀ·v, optionally weighted by w: mᵀ·diag(w)·v.
func (m *Matrix) AtV(v, w []float64) []float64 {
	if len(v) != m.Rows {
		panic("linalg: AtV dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		wi := v[i]
		if w != nil {
			wi *= w[i]
		}
		if floats.Exact(wi, 0) { // skipping exact zeros never changes the sum
			continue
		}
		row := m.Row(i)
		for j, x := range row {
			out[j] += wi * x
		}
	}
	return out
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive definite A. It fails on non-SPD input.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("linalg: matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveChol solves A·x = b given the Cholesky factor L of A.
func SolveChol(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive (semi-)definite A,
// escalating a diagonal ridge until the factorization succeeds. It is the
// workhorse of the penalized least-squares fits, where the penalty usually
// — but not always — makes the system strictly definite.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	// Scale the ridge to the matrix magnitude.
	maxDiag := 0.0
	for i := 0; i < a.Rows; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if floats.Exact(maxDiag, 0) { // all-zero matrix: any positive ridge scale works
		maxDiag = 1
	}
	ridge := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := New(a.Rows, a.Cols)
		copy(work.Data, a.Data)
		if ridge > 0 {
			for i := 0; i < a.Rows; i++ {
				work.Add(i, i, ridge)
			}
		}
		if l, err := Cholesky(work); err == nil {
			return SolveChol(l, b), nil
		}
		if floats.Exact(ridge, 0) { // 0 is the assigned not-yet-regularized sentinel
			ridge = maxDiag * 1e-12
		} else {
			ridge *= 100
		}
	}
	return nil, fmt.Errorf("linalg: SPD solve failed even with ridge %g", ridge)
}
