package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"mpicollpred/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestAtAWeighted(t *testing.T) {
	m := New(3, 2)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	w := []float64{1, 2, 3}
	g := m.AtA(w)
	// gram[0][0] = 1*1 + 2*9 + 3*25 = 94
	if g.At(0, 0) != 94 {
		t.Errorf("AtA[0][0] = %v", g.At(0, 0))
	}
	if g.At(0, 1) != g.At(1, 0) {
		t.Error("AtA not symmetric")
	}
	// gram[0][1] = 1*1*2 + 2*3*4 + 3*5*6 = 2+24+90 = 116
	if g.At(0, 1) != 116 {
		t.Errorf("AtA[0][1] = %v", g.At(0, 1))
	}
}

func TestAtV(t *testing.T) {
	m := New(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	got := m.AtV([]float64{1, 1}, nil)
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("AtV = %v", got)
	}
	got = m.AtV([]float64{1, 1}, []float64{2, 0})
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("weighted AtV = %v", got)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) ||
		!almostEq(l.At(1, 1), math.Sqrt(2), 1e-12) {
		t.Errorf("L = %v", l.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := New(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected failure on indefinite matrix")
	}
	b := New(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Error("expected failure on non-square matrix")
	}
}

func TestSolveRandomSPDQuick(t *testing.T) {
	rng := sim.NewRNG(42)
	f := func(seed8 uint8) bool {
		n := int(seed8%6) + 2
		// Build SPD as BᵀB + I.
		b := New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.Norm()
		}
		a := b.AtA(nil)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.Norm()
		}
		rhs := a.MulVec(xTrue)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPDWithSemiDefinite(t *testing.T) {
	// Rank-deficient Gram matrix: SolveSPD must still return a solution
	// (minimum-ridge regularized).
	a := New(2, 2)
	copy(a.Data, []float64{1, 1, 1, 1})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Any x with x0+x1 ~= 2 is acceptable.
	if !almostEq(x[0]+x[1], 2, 1e-4) {
		t.Errorf("x = %v", x)
	}
}
