module mpicollpred

go 1.22
