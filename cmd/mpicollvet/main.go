// Command mpicollvet runs the repository's domain-specific static-analysis
// suite (internal/lint) over Go package patterns and reports findings.
//
// Usage:
//
//	go run ./cmd/mpicollvet ./...          # text report, exit 1 on findings
//	go run ./cmd/mpicollvet -json ./...    # machine-readable report
//	go run ./cmd/mpicollvet -list          # describe the analyzers
//
// The analyzers enforce the pipeline's determinism, numeric-safety, and
// metrics-hygiene invariants; see DESIGN.md §8 for the full catalogue and
// the suppression-comment syntax.
package main

import (
	"os"

	"mpicollpred/internal/lint"
)

func main() {
	os.Exit(lint.CLIMain(os.Args[1:], os.Stdout, os.Stderr))
}
