// Command mpicollvet runs the repository's domain-specific static-analysis
// suite (internal/lint) over Go package patterns and reports findings.
//
// Usage:
//
//	go run ./cmd/mpicollvet ./...                     # text report, exit 1 on findings
//	go run ./cmd/mpicollvet -json ./...               # machine-readable report
//	go run ./cmd/mpicollvet -list                     # describe the analyzers
//	go run ./cmd/mpicollvet -sarif out.sarif ./...    # SARIF 2.1.0 for code scanning
//	go run ./cmd/mpicollvet -write-baseline b.json ./...
//	go run ./cmd/mpicollvet -baseline b.json ./...    # fail only on NEW findings
//	go run ./cmd/mpicollvet -fix -diff ./...          # preview mechanical rewrites
//	go run ./cmd/mpicollvet -fix ./...                # apply them in place
//	go run ./cmd/mpicollvet -workers 4 -benchout BENCH_lint.json -min-speedup 2 ./...
//
// The analyzers enforce the pipeline's determinism, numeric-safety,
// metrics-hygiene, and concurrency-contract invariants. The per-file checks
// are backed by an interprocedural call graph with blocking/nondeterminism
// effect propagation; see DESIGN.md §8 for the catalogue, the effect
// lattice, and the suppression-comment syntax. Output is byte-identical at
// any -workers setting.
package main

import (
	"os"

	"mpicollpred/internal/lint"
)

func main() {
	os.Exit(lint.CLIMain(os.Args[1:], os.Stdout, os.Stderr))
}
