// Command mpicolltune is the tuning step of the framework: it trains the
// per-configuration regression models on a benchmark dataset and answers
// queries for unseen allocations — either as a one-off prediction or as a
// tuning file for a SLURM-style job allocation (the paper's deployment
// workflow). Trained models can be persisted as snapshots (-save) and used
// later without retraining (-load), which is also how mpicollserve gets its
// models.
//
// Usage:
//
//	mpicolltune -dataset d1 -learner gam -nodes 27 -ppn 16 -msize 65536
//	mpicolltune -dataset d1 -learner xgboost -nodes 34 -ppn 32 -tuning-file
//	mpicolltune -dataset d2 -learner knn -nodes 27 -ppn 16 -msize 4096 -top 5
//	mpicolltune -dataset d1 -learner gam -save models/d1-gam.snap
//	mpicolltune -load models/d1-gam.snap -nodes 27 -ppn 16 -msize 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/obs"
)

func main() {
	var (
		dsName  = flag.String("dataset", "d1", "training dataset (d1..d8)")
		scale   = flag.String("scale", "mid", "dataset scale: smoke, mid, full")
		cache   = flag.String("cache", "results/cache", "dataset cache directory")
		learner = flag.String("learner", "gam", "regression learner: knn, gam, xgboost, rf, linear")
		nodes   = flag.Int("nodes", 0, "number of compute nodes of the target allocation")
		ppn     = flag.Int("ppn", 0, "processes per node of the target allocation")
		msize   = flag.Int64("msize", 0, "message size in bytes (single prediction)")
		top     = flag.Int("top", 1, "show the top-k predicted configurations")
		tuning  = flag.Bool("tuning-file", false, "emit a tuning rules file over the standard message sizes")
		train   = flag.String("train-nodes", "", "comma-separated training node counts (default: the machine's full Table III split)")
		save    = flag.String("save", "", "write the trained model to this snapshot file")
		load    = flag.String("load", "", "load a model snapshot instead of training (skips dataset generation)")
		metrics = flag.String("metrics", "", "write a metrics-registry snapshot to this file (.json for JSON)")
		verbose = flag.Bool("v", false, "verbose (debug) logging")
		quiet   = flag.Bool("quiet", false, "suppress informational logging")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	if *load != "" && *save != "" {
		fmt.Fprintln(os.Stderr, "mpicolltune: -save and -load are mutually exclusive")
		os.Exit(2)
	}
	wantQuery := *tuning || *msize > 0
	if wantQuery && (*nodes <= 0 || *ppn <= 0) {
		fmt.Fprintln(os.Stderr, "mpicolltune: -nodes and -ppn are required")
		os.Exit(2)
	}
	if !wantQuery && *save == "" {
		fmt.Fprintln(os.Stderr, "mpicolltune: provide -msize for a prediction, -tuning-file for a rules file, or -save for a snapshot")
		os.Exit(2)
	}

	var (
		sel    *core.Selector
		coll   string
		msizes []int64
	)
	if *load != "" {
		var fp core.Fingerprint
		var err error
		sel, fp, err = core.LoadSnapshot(*load)
		fail(err)
		log.Infof("loaded snapshot %s: %s", *load, fp)
		// The tuning-file message-size sweep comes from the snapshot's
		// dataset spec; no benchmark data is generated or read.
		spec, err := dataset.SpecByName(fp.Dataset, dataset.Scale(*scale))
		fail(err)
		coll, msizes = sel.Coll, spec.Msizes
	} else {
		prog := obs.NewProgress(log, "generating "+*dsName)
		ds, err := dataset.LoadOrGenerate(*cache, *dsName, dataset.Scale(*scale), prog.Func())
		fail(err)
		prog.Finish()
		mach, set, err := ds.Spec.Resolve()
		fail(err)

		var trainNodes []int
		if *train != "" {
			for _, part := range strings.Split(*train, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				fail(err)
				trainNodes = append(trainNodes, n)
			}
		} else {
			split, err := eval.SplitFor(ds.Spec.Machine)
			fail(err)
			trainNodes = split.Full
		}

		sel, err = core.Train(ds, set, *learner, trainNodes)
		fail(err)
		sel.SetFallback(mach, set)
		log.Infof("trained %s on %s (%d configurations, nodes %v) in %.3gs",
			*learner, *dsName, len(sel.Configs()), trainNodes, sel.FitWall)
		coll, msizes = ds.Spec.Coll, ds.Spec.Msizes

		if *save != "" {
			fp := core.FingerprintFor(ds, *learner, trainNodes)
			fail(sel.SaveSnapshot(*save, fp))
			log.Infof("snapshot -> %s (%s)", *save, fp)
		}
	}
	defer func() {
		if *metrics != "" {
			fail(obs.Default.DumpFile(*metrics))
			log.Infof("metrics snapshot -> %s", *metrics)
		}
	}()

	if !wantQuery {
		return
	}
	if *tuning {
		fmt.Print(sel.TuningFile(*nodes, *ppn, msizes))
		return
	}
	preds := sel.PredictAll(*nodes, *ppn, *msize)
	if *top < 1 {
		*top = 1
	}
	if *top > len(preds) {
		*top = len(preds)
	}
	fmt.Printf("%s, %d x %d processes, %d bytes:\n", coll, *nodes, *ppn, *msize)
	for i := 0; i < *top; i++ {
		p := preds[i]
		fmt.Printf("  %d. alg %-2d config %-3d %-32s predicted %.6gs\n",
			i+1, p.AlgID, p.ConfigID, p.Label, p.Predicted)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicolltune: %v\n", err)
		os.Exit(1)
	}
}
