// Command mpicolltune is the tuning step of the framework: it trains the
// per-configuration regression models on a benchmark dataset and answers
// queries for unseen allocations — either as a one-off prediction or as a
// tuning file for a SLURM-style job allocation (the paper's deployment
// workflow). Trained models can be persisted as snapshots (-save) and used
// later without retraining (-load), which is also how mpicollserve gets its
// models.
//
// -dataset and -learner accept comma-separated lists; the resulting
// dataset × learner matrix of selectors is trained concurrently on one
// bounded fit-worker pool (-fitworkers), with snapshot saving overlapped
// with the remaining fits. Parallel training is bit-identical to serial
// training; -fitbench measures the speedup and proves the identity.
//
// Usage:
//
//	mpicolltune -dataset d1 -learner gam -nodes 27 -ppn 16 -msize 65536
//	mpicolltune -dataset d1 -learner xgboost -nodes 34 -ppn 32 -tuning-file
//	mpicolltune -dataset d2 -learner knn -nodes 27 -ppn 16 -msize 4096 -top 5
//	mpicolltune -dataset d1 -learner gam -save models/d1-gam.snap
//	mpicolltune -dataset d1,d2 -learner knn,gam,xgboost -save models/
//	mpicolltune -dataset d4 -learner gam -fitworkers 4 -fitbench BENCH_train.json
//	mpicolltune -load models/d1-gam.snap -nodes 27 -ppn 16 -msize 65536
//
// -retrain-from runs one offline pass of the internal/retrain pipeline: it
// ingests a finished selection audit log, re-measures the served instance
// cells (optionally under a -retrain-drift fault plan), and refits the
// affected configurations of the snapshot into a versioned candidate — the
// same code path as the `mpicollserve -retrain` daemon, so the candidate is
// byte-identical to what the online loop would write for the same log:
//
//	mpicolltune -retrain-from models/d1-gam.snap -retrain-log audit.jsonl \
//	    -retrain-out models -retrain-drift straggler:node=0,factor=4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/retrain"
)

// unit is one (dataset, learner) cell of the tuning matrix.
type unit struct {
	ds      *dataset.Dataset
	learner string
	nodes   []int // training node counts
	sel     *core.Selector
}

func (u *unit) name() string { return u.ds.Spec.Name + "-" + u.learner }

func (u *unit) fingerprint() core.Fingerprint {
	return core.FingerprintFor(u.ds, u.learner, u.nodes)
}

func main() {
	var (
		dsNames  = flag.String("dataset", "d1", "comma-separated training datasets (d1..d8)")
		scale    = flag.String("scale", "mid", "dataset scale: smoke, mid, full")
		cache    = flag.String("cache", "results/cache", "dataset cache directory")
		learners = flag.String("learner", "gam", "comma-separated regression learners: knn, gam, xgboost, rf, linear")
		nodes    = flag.Int("nodes", 0, "number of compute nodes of the target allocation")
		ppn      = flag.Int("ppn", 0, "processes per node of the target allocation")
		msize    = flag.Int64("msize", 0, "message size in bytes (single prediction)")
		top      = flag.Int("top", 1, "show the top-k predicted configurations")
		tuning   = flag.Bool("tuning-file", false, "emit a tuning rules file over the standard message sizes")
		train    = flag.String("train-nodes", "", "comma-separated training node counts (default: the machine's full Table III split)")
		save     = flag.String("save", "", "write trained models here (a file for a single model, a directory for a matrix)")
		load     = flag.String("load", "", "load a model snapshot instead of training (skips dataset generation)")
		workers  = flag.Int("fitworkers", 0, "fit-worker pool size (0 = GOMAXPROCS, 1 = serial)")

		retrainFrom  = flag.String("retrain-from", "", "offline retrain: base snapshot to retrain from an audit log")
		retrainLog   = flag.String("retrain-log", "", "offline retrain: finished audit log to ingest (required with -retrain-from)")
		retrainOut   = flag.String("retrain-out", "results/retrain", "offline retrain: candidate snapshot output directory")
		retrainDrift = flag.String("retrain-drift", "", "offline retrain: fault plan perturbing the re-measurements")
		retrainCells = flag.Int("retrain-cells", 0, "offline retrain: cap on distinct instance cells swept (0 = default)")
		fitbench     = flag.String("fitbench", "", "train serially and in parallel, verify bit-identity, write a speedup report here")
		metrics      = flag.String("metrics", "", "write a metrics-registry snapshot to this file (.json for JSON)")
		verbose      = flag.Bool("v", false, "verbose (debug) logging")
		quiet        = flag.Bool("quiet", false, "suppress informational logging")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))
	core.SetFitWorkers(*workers)

	if *retrainFrom != "" {
		if *retrainLog == "" {
			fmt.Fprintln(os.Stderr, "mpicolltune: -retrain-from needs the audit log via -retrain-log")
			os.Exit(2)
		}
		runRetrainOnce(log, *retrainFrom, *retrainLog, *retrainOut, *retrainDrift,
			*cache, dataset.Scale(*scale), *retrainCells)
		return
	}
	if *load != "" && *save != "" {
		fmt.Fprintln(os.Stderr, "mpicolltune: -save and -load are mutually exclusive")
		os.Exit(2)
	}
	dsList := splitList(*dsNames)
	learnerList := splitList(*learners)
	matrix := len(dsList)*len(learnerList) > 1
	wantQuery := *tuning || *msize > 0
	if wantQuery && (*nodes <= 0 || *ppn <= 0) {
		fmt.Fprintln(os.Stderr, "mpicolltune: -nodes and -ppn are required")
		os.Exit(2)
	}
	if wantQuery && matrix {
		fmt.Fprintln(os.Stderr, "mpicolltune: predictions and tuning files need exactly one dataset and one learner")
		os.Exit(2)
	}
	if !wantQuery && *save == "" && *fitbench == "" {
		fmt.Fprintln(os.Stderr, "mpicolltune: provide -msize for a prediction, -tuning-file for a rules file, -save for snapshots, or -fitbench for a training benchmark")
		os.Exit(2)
	}

	defer func() {
		if *metrics != "" {
			fail(obs.Default.DumpFile(*metrics))
			log.Infof("metrics snapshot -> %s", *metrics)
		}
	}()

	var (
		sel    *core.Selector
		coll   string
		msizes []int64
	)
	if *load != "" {
		var fp core.Fingerprint
		var err error
		sel, fp, err = core.LoadSnapshot(*load)
		fail(err)
		log.Infof("loaded snapshot %s: %s", *load, fp)
		// The tuning-file message-size sweep comes from the snapshot's
		// dataset spec; no benchmark data is generated or read.
		spec, err := dataset.SpecByName(fp.Dataset, dataset.Scale(*scale))
		fail(err)
		coll, msizes = sel.Coll, spec.Msizes
	} else {
		units := buildUnits(log, dsList, learnerList, *cache, dataset.Scale(*scale), *train)

		if *fitbench != "" {
			fail(runFitBench(log, units, *workers, *fitbench))
			if !wantQuery && *save == "" {
				return
			}
		}

		saveDir := ""
		savePath := *save
		if matrix && *save != "" {
			saveDir = *save
			fail(os.MkdirAll(saveDir, 0o755))
			savePath = ""
		}
		trainMatrix(log, units, saveDir, savePath)

		u := units[0]
		sel = u.sel
		coll, msizes = u.ds.Spec.Coll, u.ds.Spec.Msizes
	}

	if !wantQuery {
		return
	}
	if *tuning {
		fmt.Print(sel.TuningFile(*nodes, *ppn, msizes))
		return
	}
	preds := sel.PredictAll(*nodes, *ppn, *msize)
	if *top < 1 {
		*top = 1
	}
	if *top > len(preds) {
		*top = len(preds)
	}
	fmt.Printf("%s, %d x %d processes, %d bytes:\n", coll, *nodes, *ppn, *msize)
	for i := 0; i < *top; i++ {
		p := preds[i]
		fmt.Printf("  %d. alg %-2d config %-3d %-32s predicted %.6gs\n",
			i+1, p.AlgID, p.ConfigID, p.Label, p.Predicted)
	}
}

// runRetrainOnce is the -retrain-from path: one offline observe→refit pass
// over a finished audit log, printing the candidate report as JSON.
func runRetrainOnce(log *obs.Logger, snapPath, auditPath, outDir, driftSpec, cache string, scale dataset.Scale, maxCells int) {
	var plan *fault.Plan
	if driftSpec != "" {
		p, err := fault.Parse(driftSpec)
		fail(err)
		plan = p
		log.Infof("retrain: re-measuring under drift plan %q", driftSpec)
	}
	fail(os.MkdirAll(outDir, 0o755))
	rep, err := retrain.Once(retrain.OnceOptions{
		SnapshotPath: snapPath, AuditPath: auditPath, OutDir: outDir,
		CacheDir: cache, Scale: scale, Drift: plan, MaxCells: maxCells,
	})
	fail(err)
	c := rep.Candidate
	log.Infof("retrained %s from %d audit records (%d with predictions): %d cells re-measured, %d samples upserted, %d configurations refit",
		rep.Model, rep.Records, rep.Ingested, c.Cells, c.Samples, c.RefitConfigs)
	log.Infof("candidate -> %s", c.Path)
	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	fmt.Println(string(data))
}

// buildUnits loads every requested dataset once and expands the
// dataset × learner matrix in deterministic order.
func buildUnits(log *obs.Logger, dsList, learnerList []string, cache string, scale dataset.Scale, trainFlag string) []*unit {
	var flagNodes []int
	for _, part := range splitList(trainFlag) {
		n, err := strconv.Atoi(part)
		fail(err)
		flagNodes = append(flagNodes, n)
	}
	var units []*unit
	for _, name := range dsList {
		prog := obs.NewProgress(log, "generating "+name)
		ds, err := dataset.LoadOrGenerate(cache, name, scale, prog.Func())
		fail(err)
		prog.Finish()
		trainNodes := flagNodes
		if len(trainNodes) == 0 {
			split, err := eval.SplitFor(ds.Spec.Machine)
			fail(err)
			trainNodes = split.Full
		}
		for _, learner := range learnerList {
			units = append(units, &unit{ds: ds, learner: learner, nodes: trainNodes})
		}
	}
	if len(units) == 0 {
		fmt.Fprintln(os.Stderr, "mpicolltune: no dataset/learner selected")
		os.Exit(2)
	}
	return units
}

// trainMatrix fits every unit concurrently on the shared fit-worker pool.
// Each unit's snapshot is saved from its own goroutine the moment its fits
// complete, overlapping disk writes with the remaining training work.
func trainMatrix(log *obs.Logger, units []*unit, saveDir, savePath string) {
	var wg sync.WaitGroup
	errs := make([]error, len(units))
	for i, u := range units {
		wg.Add(1)
		go func(i int, u *unit) {
			defer wg.Done()
			mach, set, err := u.ds.Spec.Resolve()
			if err != nil {
				errs[i] = err
				return
			}
			t0 := time.Now()
			sel, err := core.Train(u.ds, set, u.learner, u.nodes)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", u.name(), err)
				return
			}
			sel.SetFallback(mach, set)
			u.sel = sel
			log.Infof("trained %s on %s (%d configurations, nodes %v) in %.3gs (fit wall %.3gs)",
				u.learner, u.ds.Spec.Name, len(sel.Configs()), u.nodes, time.Since(t0).Seconds(), sel.FitWall)
			path := savePath
			if saveDir != "" {
				path = filepath.Join(saveDir, u.name()+".snap")
			}
			if path != "" {
				if err := sel.SaveSnapshot(path, u.fingerprint()); err != nil {
					errs[i] = err
					return
				}
				log.Infof("snapshot -> %s (%s)", path, u.fingerprint())
			}
		}(i, u)
	}
	wg.Wait()
	for _, err := range errs {
		fail(err)
	}
}

// fitBenchReport is what -fitbench writes (BENCH_train.json in CI).
type fitBenchReport struct {
	Datasets        []string `json:"datasets"`
	Learners        []string `json:"learners"`
	Selectors       int      `json:"selectors"`
	ModelsFitted    int      `json:"models_fitted"`
	Workers         int      `json:"workers"`
	SerialSeconds   float64  `json:"serial_seconds"`
	ParallelSeconds float64  `json:"parallel_seconds"`
	Speedup         float64  `json:"speedup"`
	SerialFitWall   float64  `json:"serial_fit_wall_seconds"`
	ParallelFitWall float64  `json:"parallel_fit_wall_seconds"`
	// FitWallSpeedup divides the serial fit wall (the time the fits alone
	// would take back to back) by the parallel leg's elapsed time — the
	// headline parallelism number, independent of dataset-loading overhead.
	FitWallSpeedup     float64 `json:"fit_wall_speedup"`
	SnapshotsIdentical bool    `json:"snapshots_identical"`
}

// runFitBench trains the matrix twice — on a 1-worker pool, one unit at a
// time (the serial baseline), then concurrently on a pool of the requested
// size — verifies the two runs produced bit-identical snapshots, and writes
// the wall-clock speedup report. A snapshot mismatch is a determinism bug
// and fails the run.
func runFitBench(log *obs.Logger, units []*unit, workers int, out string) error {
	rep := fitBenchReport{Workers: workers, Selectors: len(units)}
	if rep.Workers <= 0 {
		rep.Workers = core.DefaultFitPool().Workers()
	}
	seen := map[string]bool{}
	for _, u := range units {
		if !seen[u.ds.Spec.Name] {
			seen[u.ds.Spec.Name] = true
			rep.Datasets = append(rep.Datasets, u.ds.Spec.Name)
		}
	}
	seen = map[string]bool{}
	for _, u := range units {
		if !seen[u.learner] {
			seen[u.learner] = true
			rep.Learners = append(rep.Learners, u.learner)
		}
	}

	type trained struct {
		snap    []byte
		fitWall float64
		configs int
	}
	run := func(pool *core.FitPool, concurrent bool) ([]trained, float64, error) {
		defer pool.Close()
		outs := make([]trained, len(units))
		errs := make([]error, len(units))
		one := func(i int, u *unit) {
			_, set, err := u.ds.Spec.Resolve()
			if err != nil {
				errs[i] = err
				return
			}
			sel, err := core.TrainPool(u.ds, set, u.learner, u.nodes, pool)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", u.name(), err)
				return
			}
			snap, err := sel.Snapshot(u.fingerprint())
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = trained{snap: snap, fitWall: sel.FitWall, configs: len(sel.Configs())}
		}
		t0 := time.Now()
		if concurrent {
			var wg sync.WaitGroup
			for i, u := range units {
				wg.Add(1)
				go func(i int, u *unit) { defer wg.Done(); one(i, u) }(i, u)
			}
			wg.Wait()
		} else {
			for i, u := range units {
				one(i, u)
			}
		}
		elapsed := time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		return outs, elapsed, nil
	}

	log.Infof("fitbench: serial leg (%d selectors, 1 worker)", len(units))
	serial, serialElapsed, err := run(core.NewFitPool(1), false)
	if err != nil {
		return err
	}
	log.Infof("fitbench: parallel leg (%d workers)", rep.Workers)
	parallel, parallelElapsed, err := run(core.NewFitPool(rep.Workers), true)
	if err != nil {
		return err
	}

	rep.SerialSeconds, rep.ParallelSeconds = serialElapsed, parallelElapsed
	if parallelElapsed > 0 {
		rep.Speedup = serialElapsed / parallelElapsed
	}
	rep.SnapshotsIdentical = true
	for i := range units {
		rep.SerialFitWall += serial[i].fitWall
		rep.ParallelFitWall += parallel[i].fitWall
		rep.ModelsFitted += serial[i].configs
		if !bytes.Equal(serial[i].snap, parallel[i].snap) {
			rep.SnapshotsIdentical = false
			log.Errorf("fitbench: %s: parallel snapshot differs from serial snapshot", units[i].name())
		}
	}
	if parallelElapsed > 0 {
		rep.FitWallSpeedup = rep.SerialFitWall / parallelElapsed
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	log.Infof("fitbench: serial %.3gs, parallel %.3gs at %d workers -> %.2fx, identical=%v -> %s",
		rep.SerialSeconds, rep.ParallelSeconds, rep.Workers, rep.Speedup, rep.SnapshotsIdentical, out)
	if !rep.SnapshotsIdentical {
		return fmt.Errorf("fitbench: parallel training is not bit-identical to serial training")
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicolltune: %v\n", err)
		os.Exit(1)
	}
}
