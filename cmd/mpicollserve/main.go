// Command mpicollserve runs the tuning service: it loads model snapshots
// produced by `mpicolltune -save` and answers selection queries over
// HTTP/JSON, with a sharded selection cache, atomic hot reload (SIGHUP or
// POST /v1/reload), and graceful shutdown on SIGINT/SIGTERM.
//
// It doubles as the load-generation client (-loadgen) used by CI to
// benchmark a running server and write BENCH_serve.json.
//
// Usage:
//
//	mpicollserve -models d1-gam.snap,d2-knn.snap -addr :8080
//	mpicollserve -loadgen -url http://127.0.0.1:8080 -duration 10s -out BENCH_serve.json
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/serve"
)

func main() {
	var (
		models    = flag.String("models", "", "comma-separated model snapshot files to serve")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		cacheSize = flag.Int("cache-size", 65536, "selection cache capacity in entries (<= -1 disables)")
		shards    = flag.Int("cache-shards", 16, "selection cache shard count")
		batchWrk  = flag.Int("batch-workers", 0, "per-request /v1/batch concurrency cap (0 = GOMAXPROCS, 1 = serial)")
		auditPath = flag.String("audit", "", "append-only JSONL selection audit log (empty disables auditing)")
		auditMax  = flag.Int64("audit-max-bytes", audit.DefaultMaxBytes, "audit log rotation threshold in bytes")
		traceRing = flag.Int("trace-ring", 0, "recent request traces kept for /debug/traces (0 disables tracing)")
		sloLat    = flag.Duration("slo-latency", serve.DefaultLatencySLO, "per-request latency SLO for the burn-rate monitor")
		verbose   = flag.Bool("v", false, "verbose (debug) logging")
		quiet     = flag.Bool("quiet", false, "suppress informational logging")

		loadgen  = flag.Bool("loadgen", false, "run as a load-generation client instead of a server")
		url      = flag.String("url", "http://127.0.0.1:8080", "loadgen: server base URL")
		model    = flag.String("model", "", "loadgen: model name to query (empty works for single-model servers)")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		workers  = flag.Int("workers", 8, "loadgen: concurrent client goroutines")
		seed     = flag.Uint64("seed", 1, "loadgen: instance-sequence seed")
		batch    = flag.Int("batch", 0, "loadgen: POST /v1/batch with this many instances per request (0 = /v1/select)")
		nodesCSV = flag.String("nodes", "", "loadgen: comma-separated node-count pool overriding the default")
		ppnsCSV  = flag.String("ppns", "", "loadgen: comma-separated ppn pool overriding the default")
		msizes   = flag.String("msizes", "", "loadgen: comma-separated message-size pool overriding the default")
		out      = flag.String("out", "BENCH_serve.json", "loadgen: report file")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	if *loadgen {
		runLoadgen(log, serve.LoadgenOptions{
			URL: strings.TrimRight(*url, "/"), Model: *model,
			Duration: *duration, Workers: *workers, Seed: *seed, Batch: *batch,
			Nodes: parseIntPool(*nodesCSV, "-nodes"), PPNs: parseIntPool(*ppnsCSV, "-ppns"),
			Msizes: parseInt64Pool(*msizes, "-msizes"),
		}, *out)
		return
	}

	if *models == "" {
		fmt.Fprintln(os.Stderr, "mpicollserve: -models is required (snapshots from `mpicolltune -save`)")
		os.Exit(2)
	}
	var paths []string
	for _, p := range strings.Split(*models, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}

	var auditLog *audit.Logger
	if *auditPath != "" {
		lg, err := audit.NewLogger(*auditPath, audit.LoggerOptions{MaxBytes: *auditMax})
		fail(err)
		auditLog = lg
		log.Infof("auditing selections to %s (rotate at %d bytes)", *auditPath, *auditMax)
	}

	srv, err := serve.New(serve.Options{
		SnapshotPaths: paths,
		CacheSize:     *cacheSize,
		CacheShards:   *shards,
		BatchWorkers:  *batchWrk,
		Log:           log,
		Audit:         auditLog,
		TraceRing:     *traceRing,
		LatencySLO:    *sloLat,
	})
	fail(err)
	log.Infof("serving models %v (generation %d)", srv.Registry().Names(), srv.Registry().Gen())

	l, err := net.Listen("tcp", *addr)
	fail(err)
	log.Infof("listening on http://%s", l.Addr())

	// SIGHUP hot-reloads the snapshots; SIGINT/SIGTERM drain and exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					log.Errorf("reload failed (previous models still serving): %v", err)
				} else {
					log.Infof("reloaded models %v (generation %d)", srv.Registry().Names(), srv.Registry().Gen())
				}
				continue
			}
			log.Infof("%s: draining and shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				log.Errorf("shutdown: %v", err)
			}
			cancel()
			return
		}
	}()

	fail(srv.Serve(l))
	if auditLog != nil {
		if err := auditLog.Close(); err != nil {
			log.Errorf("closing audit log: %v", err)
		}
	}
	log.Infof("bye")
}

// parseInt64Pool parses a comma-separated loadgen pool override ("" keeps
// the loadgen default).
func parseInt64Pool(s, flagName string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 1 {
			fail(fmt.Errorf("bad %s entry %q", flagName, part))
		}
		out = append(out, v)
	}
	return out
}

func parseIntPool(s, flagName string) []int {
	var out []int
	for _, v := range parseInt64Pool(s, flagName) {
		out = append(out, int(v))
	}
	return out
}

func runLoadgen(log *obs.Logger, opts serve.LoadgenOptions, out string) {
	log.Infof("loadgen: %d workers against %s for %s", opts.Workers, opts.URL, opts.Duration)
	rep, err := serve.Loadgen(opts)
	if rep.Requests > 0 {
		log.Infof("loadgen: %d requests (%.1f%% cached, %d fallbacks, %d errors), %.0f req/s, p50 %.0fus p90 %.0fus p99 %.0fus",
			rep.Requests, 100*rep.CacheHitRatio, rep.Fallbacks, rep.Errors, rep.QPS,
			rep.LatencyP50Us, rep.LatencyP90Us, rep.LatencyP99Us)
		if rep.BatchSize > 0 {
			log.Infof("loadgen: batches of %d -> %d instances, %.0f instances/s",
				rep.BatchSize, rep.Instances, rep.InstancesPerSec)
		}
	}
	if out != "" {
		if werr := rep.WriteFile(out); werr != nil {
			fail(werr)
		}
		log.Infof("loadgen: report -> %s", out)
	}
	fail(err)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicollserve: %v\n", err)
		os.Exit(1)
	}
}
