// Command mpicollserve runs the tuning service: it loads model snapshots
// produced by `mpicolltune -save` and answers selection queries over
// HTTP/JSON, with a sharded selection cache, atomic hot reload (SIGHUP or
// POST /v1/reload), and graceful shutdown on SIGINT/SIGTERM.
//
// Three auxiliary modes turn one binary into a whole serving fleet:
//
//   - -router fronts N replicas with health-checked, consistent-hash
//     routing, retries, circuit breakers, hedged requests, and the canary
//     rollout endpoint (POST /fleet/rollout).
//   - -chaos wraps a replica in the deterministic fault injector
//     (seeded delays, 5xx bursts, dropped connections) for resilience
//     drills and CI smoke tests.
//   - -loadgen is the load-generation client used by CI to benchmark a
//     server — or, with -urls, a whole fleet — and write BENCH_serve.json.
//
// With -retrain (requires -audit), the server additionally runs the online
// retraining loop of internal/retrain: it tails its own audit log, replays
// served decisions through the simulator (optionally perturbed by a
// -retrain-drift fault plan), and on sustained observed-vs-predicted error
// retrains the drifted model and deploys the candidate — in place, or via
// the router's canary rollout when -retrain-router is set. The loop's state
// machine is served at /v1/retrain/status.
//
// Usage:
//
//	mpicollserve -models d1-gam.snap,d2-knn.snap -addr :8080
//	mpicollserve -router -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 -addr :8080
//	mpicollserve -loadgen -url http://127.0.0.1:8080 -duration 10s -out BENCH_serve.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/fleet"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/retrain"
	"mpicollpred/internal/serve"
)

func main() {
	var (
		models     = flag.String("models", "", "comma-separated model snapshot files to serve")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		cacheSize  = flag.Int("cache-size", 65536, "selection cache capacity in entries (<= -1 disables)")
		shards     = flag.Int("cache-shards", 16, "selection cache shard count")
		batchWrk   = flag.Int("batch-workers", 0, "per-request /v1/batch concurrency cap (0 = GOMAXPROCS, 1 = serial)")
		auditPath  = flag.String("audit", "", "append-only JSONL selection audit log (empty disables auditing)")
		auditMax   = flag.Int64("audit-max-bytes", audit.DefaultMaxBytes, "audit log rotation threshold in bytes")
		traceRing  = flag.Int("trace-ring", 0, "recent request traces kept for /debug/traces (0 disables tracing)")
		sloLat     = flag.Duration("slo-latency", serve.DefaultLatencySLO, "per-request latency SLO for the burn-rate monitor")
		chaos      = flag.String("chaos", "", `server: seeded HTTP chaos spec, e.g. "delay:prob=0.2,ms=25;err:prob=0.1,code=503" (resilience drills)`)
		chaosSeed  = flag.Uint64("chaos-seed", 1, "server: chaos plan seed")
		drainGrace = flag.Duration("drain-grace", 0, "server: pause between flipping /readyz and closing the listener on SIGTERM, giving routers time to notice")
		verbose    = flag.Bool("v", false, "verbose (debug) logging")
		quiet      = flag.Bool("quiet", false, "suppress informational logging")

		retrainOn    = flag.Bool("retrain", false, "run the online retraining loop over the -audit log (observe -> detect drift -> retrain -> deploy)")
		retrainDrift = flag.String("retrain-drift", "", `retrain: fault plan perturbing observations, e.g. "straggler:node=0,factor=4" (simulated machine drift)`)
		retrainRtr   = flag.String("retrain-router", "", "retrain: fleet router base URL; candidates deploy via canary rollout instead of in-place reload")
		retrainDir   = flag.String("retrain-dir", "results/retrain", "retrain: candidate snapshot output directory")
		retrainCache = flag.String("retrain-cache", "results/cache", "retrain: dataset cache directory")
		retrainScale = flag.String("retrain-scale", "smoke", "retrain: dataset scale for observation and refit grids")
		retrainSLog  = flag.String("retrain-status-log", "", "retrain: JSONL state-transition log (empty disables)")
		retrainTol   = flag.Float64("retrain-tolerance", 0, "retrain: |relative error| above this is an error event (0 = default)")
		retrainHyst  = flag.Int("retrain-hysteresis", 0, "retrain: consecutive breach observations that declare drift (0 = default)")
		retrainWarm  = flag.Int("retrain-min-events", 0, "retrain: detector warm-up observation count (0 = default)")

		router    = flag.Bool("router", false, "run as the fleet router fronting -replicas instead of a server")
		replicas  = flag.String("replicas", "", "router: comma-separated replica base URLs")
		probeInt  = flag.Duration("probe-interval", 250*time.Millisecond, "router: health-probe period")
		probeTO   = flag.Duration("probe-timeout", time.Second, "router: health-probe timeout")
		hedge     = flag.Duration("hedge-after", 25*time.Millisecond, "router: hedge /v1/select and /v1/predict after this delay (negative disables)")
		brkThresh = flag.Int("breaker-threshold", 5, "router: consecutive failures that open a replica's breaker")
		brkCool   = flag.Duration("breaker-cooldown", 2*time.Second, "router: breaker open -> half-open delay")
		retries   = flag.Int("retries", 0, "router/loadgen: transient-failure retries (0 = default)")
		retryBase = flag.Duration("retry-base", 0, "router/loadgen: retry backoff unit (0 = default)")

		loadgen  = flag.Bool("loadgen", false, "run as a load-generation client instead of a server")
		url      = flag.String("url", "http://127.0.0.1:8080", "loadgen: server base URL")
		urls     = flag.String("urls", "", "loadgen: comma-separated base URLs for multi-target fleet load (overrides -url)")
		model    = flag.String("model", "", "loadgen: model name to query (empty works for single-model servers)")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		workers  = flag.Int("workers", 8, "loadgen: concurrent client goroutines")
		seed     = flag.Uint64("seed", 1, "loadgen instance-sequence / router jitter seed")
		batch    = flag.Int("batch", 0, "loadgen: POST /v1/batch with this many instances per request (0 = /v1/select)")
		nodesCSV = flag.String("nodes", "", "loadgen: comma-separated node-count pool overriding the default")
		ppnsCSV  = flag.String("ppns", "", "loadgen: comma-separated ppn pool overriding the default")
		msizes   = flag.String("msizes", "", "loadgen: comma-separated message-size pool overriding the default")
		shiftAt  = flag.Int64("shift-at", 0, "loadgen: switch to the -shift-* instance pools after this many requests (0 disables; simulates a workload shift)")
		shiftN   = flag.String("shift-nodes", "", "loadgen: node pool after the shift (default: the pre-shift pool)")
		shiftP   = flag.String("shift-ppns", "", "loadgen: ppn pool after the shift (default: the pre-shift pool)")
		shiftM   = flag.String("shift-msizes", "", "loadgen: message-size pool after the shift (default: the pre-shift pool)")
		out      = flag.String("out", "BENCH_serve.json", "loadgen: report file")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	if *loadgen {
		runLoadgen(log, serve.LoadgenOptions{
			URL: strings.TrimRight(*url, "/"), URLs: splitList(*urls), Model: *model,
			Duration: *duration, Workers: *workers, Seed: *seed, Batch: *batch,
			Retries: *retries, RetryBase: *retryBase,
			Nodes: parseIntPool(*nodesCSV, "-nodes"), PPNs: parseIntPool(*ppnsCSV, "-ppns"),
			Msizes:  parseInt64Pool(*msizes, "-msizes"),
			ShiftAt: *shiftAt, ShiftNodes: parseIntPool(*shiftN, "-shift-nodes"),
			ShiftPPNs: parseIntPool(*shiftP, "-shift-ppns"), ShiftMsizes: parseInt64Pool(*shiftM, "-shift-msizes"),
		}, *out)
		return
	}
	if *router {
		runRouter(log, fleet.Options{
			Replicas:         splitList(*replicas),
			ProbeInterval:    *probeInt,
			ProbeTimeout:     *probeTO,
			Retries:          *retries,
			RetryBase:        *retryBase,
			HedgeAfter:       *hedge,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			Seed:             *seed,
			Log:              log,
		}, *addr)
		return
	}

	if *models == "" {
		fmt.Fprintln(os.Stderr, "mpicollserve: -models is required (snapshots from `mpicolltune -save`)")
		os.Exit(2)
	}
	paths := splitList(*models)

	var auditLog *audit.Logger
	if *auditPath != "" {
		lg, err := audit.NewLogger(*auditPath, audit.LoggerOptions{MaxBytes: *auditMax})
		fail(err)
		auditLog = lg
		log.Infof("auditing selections to %s (rotate at %d bytes)", *auditPath, *auditMax)
	}

	var middleware func(http.Handler) http.Handler
	if *chaos != "" {
		plan, err := fault.ParseChaos(*chaos, *chaosSeed)
		fail(err)
		middleware = plan.Middleware
		log.Infof("chaos injection armed (seed %d): %s", *chaosSeed, *chaos)
	}

	srv, err := serve.New(serve.Options{
		SnapshotPaths: paths,
		CacheSize:     *cacheSize,
		CacheShards:   *shards,
		BatchWorkers:  *batchWrk,
		Log:           log,
		Audit:         auditLog,
		TraceRing:     *traceRing,
		LatencySLO:    *sloLat,
		Middleware:    middleware,
	})
	fail(err)
	log.Infof("serving models %v (generation %d)", srv.Registry().Names(), srv.Registry().Gen())

	stopRetrain := func() {}
	if *retrainOn {
		if *auditPath == "" {
			fail(fmt.Errorf("-retrain tails the selection audit log; enable it with -audit"))
		}
		stopRetrain = startRetrain(log, srv, retrainConfig{
			auditPath: *auditPath, drift: *retrainDrift, router: *retrainRtr,
			outDir: *retrainDir, cacheDir: *retrainCache, scale: *retrainScale,
			statusLog: *retrainSLog,
			detector: retrain.DetectorOptions{
				Tolerance: *retrainTol, Hysteresis: *retrainHyst, MinEvents: uint64(*retrainWarm),
			},
		})
	}

	l, err := net.Listen("tcp", *addr)
	fail(err)
	log.Infof("listening on http://%s", l.Addr())

	// SIGHUP hot-reloads the snapshots; SIGINT/SIGTERM drain and exit:
	// readiness flips first so routers stop sending traffic, then (after the
	// optional grace) the listener closes and in-flight requests finish.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					log.Errorf("reload failed (previous models still serving): %v", err)
				} else {
					log.Infof("reloaded models %v (generation %d)", srv.Registry().Names(), srv.Registry().Gen())
				}
				continue
			}
			log.Infof("%s: draining (readyz -> 503) and shutting down", sig)
			stopRetrain()
			srv.BeginDrain()
			if *drainGrace > 0 {
				time.Sleep(*drainGrace)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				log.Errorf("shutdown: %v", err)
			}
			cancel()
			return
		}
	}()

	fail(srv.Serve(l))
	stopRetrain()
	if auditLog != nil {
		if err := auditLog.Close(); err != nil {
			log.Errorf("closing audit log: %v", err)
		}
	}
	log.Infof("bye")
}

// retrainConfig groups the -retrain-* flag values.
type retrainConfig struct {
	auditPath, drift, router string
	outDir, cacheDir, scale  string
	statusLog                string
	detector                 retrain.DetectorOptions
}

// startRetrain wires the online retraining loop to the serving process: the
// server is the loop's reloader (and, with -retrain-router, the rollout
// deployer takes over), and its /v1/retrain/status endpoint reads the
// loop's published status. The returned stop function cancels the loop and
// waits for it to exit; it is safe to call more than once.
func startRetrain(log *obs.Logger, srv *serve.Server, cfg retrainConfig) func() {
	opts := retrain.Options{
		AuditPath: cfg.auditPath,
		Reloader:  srv,
		OutDir:    cfg.outDir,
		CacheDir:  cfg.cacheDir,
		Scale:     dataset.Scale(cfg.scale),
		Detector:  cfg.detector,
	}
	if cfg.drift != "" {
		plan, err := fault.Parse(cfg.drift)
		fail(err)
		opts.Drift = plan
		log.Infof("retrain: observing through drift plan %q", cfg.drift)
	}
	if cfg.router != "" {
		opts.Deployer = &retrain.RolloutDeployer{RouterURL: strings.TrimRight(cfg.router, "/")}
		log.Infof("retrain: deploying candidates via canary rollout at %s", cfg.router)
	}
	var statusFile *os.File
	if cfg.statusLog != "" {
		f, err := os.OpenFile(cfg.statusLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		statusFile = f
		opts.StatusLog = f
	}
	fail(os.MkdirAll(cfg.outDir, 0o755))

	loop, err := retrain.New(opts)
	fail(err)
	srv.SetRetrainStatus(func() any { return loop.Status() })
	log.Infof("retrain: tailing %s (candidates -> %s)", cfg.auditPath, cfg.outDir)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := loop.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Errorf("retrain: loop stopped: %v", err)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
			if statusFile != nil {
				if err := statusFile.Close(); err != nil {
					log.Errorf("retrain: closing status log: %v", err)
				}
			}
			log.Infof("retrain: loop stopped")
		})
	}
}

// runRouter fronts the replica fleet until SIGINT/SIGTERM.
func runRouter(log *obs.Logger, opts fleet.Options, addr string) {
	rt, err := fleet.New(opts)
	fail(err)
	rt.Start()
	l, err := net.Listen("tcp", addr)
	fail(err)
	log.Infof("fleet router on http://%s over %d replicas %v", l.Addr(), len(opts.Replicas), opts.Replicas)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Infof("%s: draining router and shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := rt.Shutdown(ctx); err != nil {
			log.Errorf("shutdown: %v", err)
		}
		cancel()
	}()

	fail(rt.Serve(l))
	log.Infof("bye")
}

// splitList parses a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseInt64Pool parses a comma-separated loadgen pool override ("" keeps
// the loadgen default).
func parseInt64Pool(s, flagName string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || v < 1 {
			fail(fmt.Errorf("bad %s entry %q", flagName, part))
		}
		out = append(out, v)
	}
	return out
}

func parseIntPool(s, flagName string) []int {
	var out []int
	for _, v := range parseInt64Pool(s, flagName) {
		out = append(out, int(v))
	}
	return out
}

func runLoadgen(log *obs.Logger, opts serve.LoadgenOptions, out string) {
	target := opts.URL
	if len(opts.URLs) > 0 {
		target = strings.Join(opts.URLs, ", ")
	}
	log.Infof("loadgen: %d workers against %s for %s", opts.Workers, target, opts.Duration)
	// Ctrl-C ends the run at the next request boundary; the partial report
	// is still aggregated and written before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := serve.Loadgen(ctx, opts)
	if rep.Requests > 0 {
		log.Infof("loadgen: %d requests (%.1f%% cached, %d fallbacks, %d errors, %d retries), %.0f req/s, p50 %.0fus p90 %.0fus p99 %.0fus",
			rep.Requests, 100*rep.CacheHitRatio, rep.Fallbacks, rep.Errors, rep.Retries, rep.QPS,
			rep.LatencyP50Us, rep.LatencyP90Us, rep.LatencyP99Us)
		if rep.BatchSize > 0 {
			log.Infof("loadgen: batches of %d -> %d instances, %.0f instances/s",
				rep.BatchSize, rep.Instances, rep.InstancesPerSec)
		}
	}
	if out != "" {
		if werr := rep.WriteFile(out); werr != nil {
			fail(werr)
		}
		log.Infof("loadgen: report -> %s", out)
	}
	fail(err)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicollserve: %v\n", err)
		os.Exit(1)
	}
}
