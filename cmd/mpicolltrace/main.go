// Command mpicolltrace runs one collective-algorithm configuration through
// the simulator with full instrumentation and exports a Chrome trace-event
// JSON file: per-rank send/recv/compute timelines plus per-node NIC and
// memory-bus occupancy. Open the output at chrome://tracing or
// https://ui.perfetto.dev to inspect how an algorithm schedules its
// communication.
//
// Usage:
//
//	mpicolltrace -lib "Open MPI" -coll bcast -config 3 -nodes 8 -ppn 4 -msize 65536 -o trace.json
//	mpicolltrace -lib "Open MPI" -coll bcast -list
//	mpicolltrace -machine Jupiter -coll allreduce -config 0 -nodes 4 -ppn 4 -msize 4096 -noise
//
// -config 0 runs the configuration the library's own decision logic picks
// for the instance.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpicollpred/internal/fault"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/sim"
)

func main() {
	var (
		machName  = flag.String("machine", "Hydra", "machine profile (Table I)")
		libName   = flag.String("lib", "Open MPI", "MPI library profile")
		collName  = flag.String("coll", mpilib.Bcast, "collective operation")
		cfgID     = flag.Int("config", 0, "configuration id (0 = library default decision)")
		nodes     = flag.Int("nodes", 8, "number of compute nodes")
		ppn       = flag.Int("ppn", 4, "processes per node")
		msize     = flag.Int64("msize", 65536, "message size in bytes")
		out       = flag.String("o", "trace.json", "trace output file")
		noise     = flag.Bool("noise", false, "enable network noise (default: deterministic)")
		faultSpec = flag.String("faults", "", "fault plan, e.g. 'straggler:node=0,factor=4' (see internal/fault)")
		seed      = flag.Uint64("seed", 1, "noise seed")
		metrics   = flag.String("metrics", "", "write a metrics-registry snapshot to this file")
		list      = flag.Bool("list", false, "list the library's configurations for the collective and exit")
		verbose   = flag.Bool("v", false, "verbose (debug) logging")
		quiet     = flag.Bool("quiet", false, "suppress informational logging")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	lib, err := mpilib.ByName(*libName)
	fail(err)
	set, err := lib.Collective(*collName)
	fail(err)

	if *list {
		fmt.Printf("%-4s %-4s %s\n", "id", "alg", "configuration")
		for _, c := range set.Configs {
			note := ""
			if c.Excluded {
				note = "  (excluded from selection)"
			}
			fmt.Printf("%-4d %-4d %s%s\n", c.ID, c.AlgID, c.Label(), note)
		}
		return
	}

	mach, err := machine.ByName(*machName)
	fail(err)
	topo, err := mach.Topo(*nodes, *ppn)
	fail(err)

	if *cfgID == mpilib.DefaultID {
		*cfgID = set.Decide(mach, topo, *msize)
		log.Infof("library decision: configuration %d", *cfgID)
	}
	cfg, err := set.Config(*cfgID)
	fail(err)
	log.Infof("tracing %s %s on %s, %dx%d processes, %d bytes",
		*libName, cfg.Label(), mach.Name, *nodes, *ppn, *msize)

	plan, err := fault.Parse(*faultSpec)
	fail(err)

	tr := obs.NewTrace()
	model := netmodel.New(mach.Net, topo, *seed, *noise)
	if inj := plan.Injector(topo.Nodes); inj != nil {
		model.SetFaults(inj)
		log.Infof("fault plan active: %s", plan.String())
	}
	model.SetTracer(tr)
	model.CollectStats(true)
	eng := sim.NewEngine()
	eng.SetTracer(tr)
	eng.CollectStats(true)

	prog := mpilib.BuildProgram(cfg, topo, *msize, false)
	res, err := eng.Run(prog, model, nil, nil)
	fail(err)
	ss := res.Stats
	ns := model.Stats()

	f, err := os.Create(*out)
	fail(err)
	if err := tr.WriteJSON(f); err != nil {
		_ = f.Close() // already failing with the write error
		fail(err)
	}
	fail(f.Close())

	fmt.Printf("makespan      %.6g s\n", res.Time)
	fmt.Printf("events        %d (peak heap depth %d)\n", res.Events, ss.PeakHeapDepth)
	fmt.Printf("sends         %d (%d eager, %d rendezvous), recvs %d, computes %d\n",
		ss.Sends, ss.EagerSends, ss.RendezvousSends, ss.Recvs, ss.Computes)
	fmt.Printf("matched       %d messages, blocked %d sends / %d recvs\n",
		ss.MessagesMatched, ss.BlockedSends, ss.BlockedRecvs)
	fmt.Printf("network       %d msgs (%d inter-node), %d bytes\n", ns.Messages, ns.InterNode, ns.Bytes)
	fmt.Printf("nic queueing  %.6g s total, %.6g s max\n", ns.QueueDelay, ns.MaxQueueDelay)
	fmt.Printf("trace         %d spans -> %s\n", tr.Len(), *out)

	if *metrics != "" {
		labels := obs.Labels{"machine": mach.Name, "lib": *libName, "coll": *collName}
		obs.Default.Counter("sim_events_total", labels).Add(int64(res.Events))
		obs.Default.Counter("sim_messages_matched_total", labels).Add(int64(ss.MessagesMatched))
		obs.Default.Counter("sim_eager_sends_total", labels).Add(int64(ss.EagerSends))
		obs.Default.Counter("sim_rendezvous_sends_total", labels).Add(int64(ss.RendezvousSends))
		obs.Default.Gauge("net_queue_delay_seconds", labels).Set(ns.QueueDelay)
		obs.Default.Gauge("sim_makespan_seconds", labels).Set(res.Time)
		fail(obs.Default.DumpFile(*metrics))
		log.Infof("metrics snapshot -> %s", *metrics)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicolltrace: %v\n", err)
		os.Exit(1)
	}
}
