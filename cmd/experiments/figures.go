package main

import (
	"fmt"
	"sort"
	"strings"

	"mpicollpred/internal/eval"
	"mpicollpred/internal/tablefmt"
)

// runFig2 regenerates the chain-broadcast parameter study (paper Fig. 2):
// speedup of every (segment size × chain count) configuration of the chain
// algorithm over the linear broadcast, on 32x32 processes on Hydra.
func runFig2(c *expCtx) (string, error) {
	d, err := c.dataset("d1")
	if err != nil {
		return "", err
	}
	_, set, err := c.resolved(d)
	if err != nil {
		return "", err
	}
	rows, err := eval.ChainSpeedup(d, set, 32, 32)
	if err != nil {
		return "", err
	}
	// One table per segment size (the paper's facets), message sizes as
	// rows, chain counts as columns.
	segs := sortedInt64Keys(rows, func(r eval.ChainSpeedupRow) int64 { return r.Seg })
	chains := sortedIntKeys(rows, func(r eval.ChainSpeedupRow) int { return r.Chains })
	msizes := sortedInt64Keys(rows, func(r eval.ChainSpeedupRow) int64 { return r.Msize })
	lookup := map[[3]int64]float64{}
	for _, r := range rows {
		lookup[[3]int64{r.Seg, int64(r.Chains), r.Msize}] = r.Speedup
	}

	var b strings.Builder
	b.WriteString("Fig. 2: Speed-up of chain-bcast configurations (alg 2) vs linear bcast (alg 1)\n")
	b.WriteString("32 nodes x 32 ppn, Open MPI profile, Hydra\n\n")
	for _, seg := range segs {
		t := &tablefmt.Table{Title: fmt.Sprintf("segment size %s:", tablefmt.Bytes(seg))}
		header := []string{"msize"}
		for _, ch := range chains {
			header = append(header, fmt.Sprintf("chains=%d", ch))
		}
		t.Headers = header
		for _, m := range msizes {
			row := []string{tablefmt.Bytes(m)}
			for _, ch := range chains {
				row = append(row, tablefmt.F(lookup[[3]int64{seg, int64(ch), m}], 2))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// strategyFigure renders a Fig. 4/6/7/8-style comparison: normalized
// running time (vs exhaustive best) of the default strategy and the
// GAM-predicted strategy, for panels (test nodes × selected ppn values).
func strategyFigure(c *expCtx, dsName, figTitle string, nodes []int, ppns []int) (string, error) {
	d, err := c.dataset(dsName)
	if err != nil {
		return "", err
	}
	mach, set, err := c.resolved(d)
	if err != nil {
		return "", err
	}
	// All prediction results in the paper's figures use GAM.
	e, err := c.evaluation(dsName, "gam", "full")
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(figTitle + "\n")
	b.WriteString("normalized running time = measured / exhaustive best (1.00 is optimal)\n\n")
	for _, n := range nodes {
		for _, ppn := range ppns {
			series, err := eval.NormalizedRuntime(d, mach, set, e.Selector, n, ppn)
			if err != nil {
				return "", err
			}
			t := &tablefmt.Table{
				Title:   fmt.Sprintf("nodes: %d   ppn: %d", n, ppn),
				Headers: []string{"msize", "Exhaustive(Best)", "Default", "Prediction"},
			}
			for i, m := range series.Msizes {
				t.AddRow(tablefmt.Bytes(m), tablefmt.F(series.Best[i], 2),
					tablefmt.F(series.Default[i], 2), tablefmt.F(series.Pred[i], 2))
			}
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

func runFig4(c *expCtx) (string, error) {
	return strategyFigure(c, "d1",
		"Fig. 4: Algorithm selection strategies for MPI_Bcast; Open MPI profile; Hydra (GAM)",
		[]int{27, 35}, []int{1, 16, 32})
}

func runFig6(c *expCtx) (string, error) {
	return strategyFigure(c, "d5",
		"Fig. 6: Algorithm selection strategies for MPI_Allreduce; Intel MPI profile; Hydra (GAM)",
		[]int{27, 35}, []int{1, 16, 32})
}

func runFig7(c *expCtx) (string, error) {
	return strategyFigure(c, "d4",
		"Fig. 7: Algorithm selection strategies for MPI_Allreduce; Open MPI profile; Jupiter (GAM)",
		[]int{27, 35}, []int{1, 8, 16})
}

func runFig8(c *expCtx) (string, error) {
	return strategyFigure(c, "d8",
		"Fig. 8: Algorithm selection strategies for MPI_Bcast; Open MPI profile; SuperMUC-NG (GAM)",
		[]int{27, 35}, []int{1, 24, 48})
}

// runFig5 regenerates the predicted-algorithm map (paper Fig. 5): for each
// learner, the algorithm id selected for every (nodes x ppn) configuration
// and message size, on the Hydra broadcast dataset.
func runFig5(c *expCtx) (string, error) {
	d, err := c.dataset("d1")
	if err != nil {
		return "", err
	}
	_, set, err := c.resolved(d)
	if err != nil {
		return "", err
	}
	split, err := eval.SplitFor(d.Spec.Machine)
	if err != nil {
		return "", err
	}
	testNodes := []int{7, 19, 35}
	choices, err := eval.AlgorithmMap(d, set, c.learners, split.Full, testNodes)
	if err != nil {
		return "", err
	}

	// Index: learner -> (nodes, ppn) -> msize -> algid.
	type colKey struct{ n, ppn int }
	byLearner := map[string]map[colKey]map[int64]int{}
	colsSeen := map[colKey]bool{}
	msizeSeen := map[int64]bool{}
	for _, ch := range choices {
		if byLearner[ch.Learner] == nil {
			byLearner[ch.Learner] = map[colKey]map[int64]int{}
		}
		ck := colKey{ch.Nodes, ch.PPN}
		if byLearner[ch.Learner][ck] == nil {
			byLearner[ch.Learner][ck] = map[int64]int{}
		}
		byLearner[ch.Learner][ck][ch.Msize] = ch.AlgID
		colsSeen[ck] = true
		msizeSeen[ch.Msize] = true
	}
	var cols []colKey
	for ck := range colsSeen {
		cols = append(cols, ck)
	}
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].n != cols[j].n {
			return cols[i].n < cols[j].n
		}
		return cols[i].ppn < cols[j].ppn
	})
	var msizes []int64
	for m := range msizeSeen {
		msizes = append(msizes, m)
	}
	sort.Slice(msizes, func(i, j int) bool { return msizes[i] > msizes[j] }) // paper: largest on top

	var b strings.Builder
	b.WriteString("Fig. 5: Predicted algorithm id per process configuration (#nodes x ppn) and\n")
	b.WriteString("message size, for each regression learner; MPI_Bcast, Open MPI profile, Hydra.\n")
	b.WriteString("(Algorithm 8 is excluded from the search space, as in the paper.)\n\n")
	for _, learner := range c.learners {
		t := &tablefmt.Table{Title: learnerLabel(learner) + ":"}
		header := []string{"msize"}
		for _, ck := range cols {
			header = append(header, fmt.Sprintf("%02dx%02d", ck.n, ck.ppn))
		}
		t.Headers = header
		usedAlgs := map[int]bool{}
		for _, m := range msizes {
			row := []string{tablefmt.Bytes(m)}
			for _, ck := range cols {
				alg := byLearner[learner][ck][m]
				usedAlgs[alg] = true
				row = append(row, tablefmt.I(alg))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		var used []int
		for a := range usedAlgs {
			used = append(used, a)
		}
		sort.Ints(used)
		fmt.Fprintf(&b, "algorithms used: %v\n\n", used)
	}
	return b.String(), nil
}

func sortedInt64Keys(rows []eval.ChainSpeedupRow, key func(eval.ChainSpeedupRow) int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, r := range rows {
		if k := key(r); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIntKeys(rows []eval.ChainSpeedupRow, key func(eval.ChainSpeedupRow) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		if k := key(r); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}
