package main

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
	"mpicollpred/internal/tablefmt"
)

// robustnessLevels is the fault-intensity ladder: each level keeps the
// previous faults and adds one more, so the machine degrades monotonically.
var robustnessLevels = []struct{ name, spec string }{
	{"clean", ""},
	{"+straggler", "straggler:node=0,factor=4"},
	{"+degraded NIC", "straggler:node=0,factor=4;nic:node=1,factor=8,period=2e-3,duty=0.5"},
	{"+noise burst", "straggler:node=0,factor=4;nic:node=1,factor=8,period=2e-3,duty=0.5;noise:sigma=0.3"},
}

// robustnessMaxInstances bounds the measured test instances per dataset so
// the experiment stays seconds-scale even at full grids.
const robustnessMaxInstances = 24

// runRobustness evaluates how the tuned selector degrades on a faulty
// machine. The selector is trained on the CLEAN dataset — exactly the
// deployment scenario where tuning happened on a healthy machine and a
// straggler or flapping NIC appears later. For each fault level, the default
// configuration and the model-selected configuration are re-measured under
// fault injection and compared; a final probe drives the selector out of its
// training envelope to demonstrate the guardrail fallback.
func runRobustness(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title:   "Robustness under fault injection: selector trained on a clean machine",
		Headers: []string{"dataset", "faults", "speedup (geo)", "pred slowdown", "default slowdown", "#inst"},
	}
	out := ""
	for _, dn := range []string{"d1", "d4"} {
		d, err := c.dataset(dn)
		if err != nil {
			return "", err
		}
		mach, set, err := c.resolved(d)
		if err != nil {
			return "", err
		}
		split, err := eval.SplitFor(d.Spec.Machine)
		if err != nil {
			return "", err
		}
		trainNodes, testNodes := robustnessSplit(split, d.Spec.Nodes)
		sel, err := core.Train(d, set, "xgboost", trainNodes)
		if err != nil {
			return "", err
		}
		sel.SetFallback(mach, set)

		instances := robustnessInstances(d, testNodes)
		if len(instances) == 0 {
			return "", fmt.Errorf("robustness: no test instances in %s", dn)
		}

		// Selections depend only on the instance, not the fault level: the
		// model cannot see the fault. Decide and Select once per instance.
		type matchup struct {
			in            dataset.Instance
			defID, predID int
		}
		var matchups []matchup
		for _, in := range instances {
			topo, err := mach.Topo(in.Nodes, in.PPN)
			if err != nil {
				return "", err
			}
			pred := sel.Select(in.Nodes, in.PPN, in.Msize)
			if pred.ConfigID < 1 {
				return "", fmt.Errorf("robustness: no selection for %+v", in)
			}
			matchups = append(matchups, matchup{in, set.Decide(mach, topo, in.Msize), pred.ConfigID})
		}
		if n := sel.Fallbacks(); n != 0 {
			return "", fmt.Errorf("robustness: %d unexpected fallbacks on in-grid instances", n)
		}

		var cleanPred, cleanDef float64
		for _, lvl := range robustnessLevels {
			plan, err := fault.Parse(lvl.spec)
			if err != nil {
				return "", err
			}
			opts := bench.DefaultOptions(mach.Name)
			opts.MaxReps = 2
			opts.Faults = plan
			runner := bench.NewRunner(opts)

			logSpeed, sumPred, sumDef := 0.0, 0.0, 0.0
			for _, mu := range matchups {
				topo, err := mach.Topo(mu.in.Nodes, mu.in.PPN)
				if err != nil {
					return "", err
				}
				predT, err := robustnessMeasure(runner, set, mu.predID, mach, topo, mu.in.Msize)
				if err != nil {
					return "", err
				}
				defT, err := robustnessMeasure(runner, set, mu.defID, mach, topo, mu.in.Msize)
				if err != nil {
					return "", err
				}
				logSpeed += math.Log(defT / predT)
				sumPred += predT
				sumDef += defT
			}
			n := float64(len(matchups))
			if lvl.name == "clean" {
				cleanPred, cleanDef = sumPred, sumDef
			}
			t.AddRow(dn, lvl.name,
				tablefmt.F(math.Exp(logSpeed/n), 2),
				tablefmt.F(sumPred/cleanPred, 2),
				tablefmt.F(sumDef/cleanDef, 2),
				tablefmt.I(len(matchups)))
		}

		// Guardrail probe: instances far beyond the training grid must be
		// answered by the library's default decision logic, not by a model
		// extrapolating into the void.
		before := sel.Fallbacks()
		probes := 0
		beyond := d.Spec.Msizes[len(d.Spec.Msizes)-1] * 1024
		for _, in := range instances[:min(4, len(instances))] {
			pred := sel.Select(in.Nodes, in.PPN, beyond)
			if pred.Fallback {
				probes++
			}
		}
		out += fmt.Sprintf("%s: guardrail probe: %d/%d out-of-envelope queries fell back to the library default (fallback counter %d -> %d)\n",
			dn, probes, min(4, len(instances)), before, sel.Fallbacks())
	}
	out = t.String() + "\n" + out
	out += "\nSlowdowns are normalized to the clean level (1.00). The selector was trained on\n" +
		"clean measurements only; the fault plans are invisible to it. Graceful degradation\n" +
		"means the tuned selection keeps (or loses only gradually) its edge over the default\n" +
		"as the machine degrades, and extrapolating queries fall back to the library default.\n"
	return out, nil
}

// robustnessSplit adapts the paper's Table III split to the dataset's actual
// node grid: reduced-scale grids (smoke, mid) carry only a subset of the
// full-grid node counts, so the split is intersected with the grid, and the
// remaining grid nodes serve as the held-out test set.
func robustnessSplit(split eval.Split, grid []int) (train, test []int) {
	in := func(set []int, v int) bool {
		for _, s := range set {
			if s == v {
				return true
			}
		}
		return false
	}
	for _, n := range grid {
		switch {
		case in(split.Full, n):
			train = append(train, n)
		case in(split.Test, n):
			test = append(test, n)
		}
	}
	// A tiny grid can leave the intersected training set too narrow for
	// interpolation (the guardrail envelope would reject every test node).
	// Hold out an interior node and train on the rest instead.
	if len(train) < 2 || len(test) == 0 {
		train, test = nil, nil
		mid := grid[len(grid)/2]
		for _, n := range grid {
			if n == mid && len(grid) > 1 {
				test = append(test, n)
			} else {
				train = append(train, n)
			}
		}
		if len(test) == 0 {
			test = grid
		}
	}
	return train, test
}

// robustnessInstances picks up to robustnessMaxInstances test instances,
// deterministically stride-sampled from the sorted test grid.
func robustnessInstances(d *dataset.Dataset, testNodes []int) []dataset.Instance {
	inTest := map[int]bool{}
	for _, n := range testNodes {
		inTest[n] = true
	}
	var all []dataset.Instance
	for _, in := range d.Instances() {
		if inTest[in.Nodes] {
			all = append(all, in)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.PPN != b.PPN {
			return a.PPN < b.PPN
		}
		return a.Msize < b.Msize
	})
	if len(all) <= robustnessMaxInstances {
		return all
	}
	stride := len(all) / robustnessMaxInstances
	var out []dataset.Instance
	for i := 0; i < len(all) && len(out) < robustnessMaxInstances; i += stride {
		out = append(out, all[i])
	}
	return out
}

// robustnessMeasure benchmarks one configuration on one instance under the
// runner's fault plan. The seed depends only on the configuration and
// instance, so fault levels are compared on identical noise draws.
func robustnessMeasure(runner *bench.Runner, set *mpilib.CollectiveSet, cfgID int,
	mach machine.Machine, topo netmodel.Topology, msize int64) (float64, error) {
	cfg, err := set.Config(cfgID)
	if err != nil {
		return 0, err
	}
	seed := sim.Seed(0xB0B5, uint64(cfgID), uint64(topo.Nodes), uint64(topo.PPN), uint64(msize))
	meas, err := runner.MeasureCapped(cfg, mach.Net, topo, msize, seed, 2)
	if err != nil {
		return 0, err
	}
	return meas.Median(), nil
}
