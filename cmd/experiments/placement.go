package main

import (
	"fmt"
	"math"
	"strings"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
	"mpicollpred/internal/tablefmt"
)

// runPlacement studies the effect of the rank placement (SLURM block vs
// cyclic distribution) on the best broadcast algorithm — one of the factors
// the paper's introduction lists as shaping the selection problem ("the
// process placement and bindings"). Evaluated by direct noise-free
// simulation on the Hydra profile.
func runPlacement(c *expCtx) (string, error) {
	mach := machine.Hydra()
	set, err := mpilib.OpenMPI().Collective(mpilib.Bcast)
	if err != nil {
		return "", err
	}
	eng := sim.NewEngine()

	best := func(topo netmodel.Topology, m int64) (mpilib.Config, float64, error) {
		var bc mpilib.Config
		bt := math.Inf(1)
		for _, cfg := range set.Selectable() {
			t, err := mpilib.SimulateOnce(eng, cfg, mach.Net, topo, m, 3, false)
			if err != nil {
				return bc, 0, err
			}
			if t < bt {
				bc, bt = cfg, t
			}
		}
		return bc, bt, nil
	}

	t := &tablefmt.Table{
		Title: "Best broadcast configuration under block vs cyclic rank placement (Hydra, 8x8)",
		Headers: []string{"msize", "block: best config", "time", "cyclic: best config", "time",
			"cyclic/block"},
	}
	blockTopo := netmodel.Topology{Nodes: 8, PPN: 8}
	cyclicTopo := netmodel.Topology{Nodes: 8, PPN: 8, Cyclic: true}
	differ := 0
	msizes := []int64{1024, 16384, 262144, 4194304}
	for _, m := range msizes {
		cb, tb, err := best(blockTopo, m)
		if err != nil {
			return "", err
		}
		cc, tc, err := best(cyclicTopo, m)
		if err != nil {
			return "", err
		}
		if cb.ID != cc.ID {
			differ++
		}
		t.AddRow(tablefmt.Bytes(m), cb.Label(), fmt.Sprintf("%.3gs", tb),
			cc.Label(), fmt.Sprintf("%.3gs", tc), tablefmt.F(tc/tb, 2))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nbest configuration differs for %d of %d message sizes; placement is part of\n"+
		"the instance, which is why production tuning must fix (or model) the layout.\n", differ, len(msizes))
	return b.String(), nil
}
