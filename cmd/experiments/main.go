// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables I–IV, Figures 2 and 4–8, and the §V training-budget
// accounting) from the simulated datasets. Results are printed and written
// to <out>/<experiment>.txt.
//
// Usage:
//
//	experiments -cache results/cache -out results -scale mid            # everything
//	experiments -only table4a,fig4                                      # a subset
//
// Datasets are loaded from the cache directory and generated on demand
// (generation is the expensive step; use cmd/mpicollbench to run it
// separately / incrementally).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// expCtx carries shared lazily-loaded state across experiments.
type expCtx struct {
	cacheDir string
	outDir   string
	scale    dataset.Scale
	learners []string
	log      *obs.Logger

	datasets map[string]*dataset.Dataset
	machines map[string]machine.Machine
	sets     map[string]*mpilib.CollectiveSet
	evals    map[string]*eval.Evaluation
}

func newCtx(cacheDir string, scale dataset.Scale, learners []string, log *obs.Logger) *expCtx {
	return &expCtx{
		cacheDir: cacheDir,
		scale:    scale,
		learners: learners,
		log:      log,
		datasets: map[string]*dataset.Dataset{},
		machines: map[string]machine.Machine{},
		sets:     map[string]*mpilib.CollectiveSet{},
		evals:    map[string]*eval.Evaluation{},
	}
}

// dataset returns the named dataset, loading or generating it once.
func (c *expCtx) dataset(name string) (*dataset.Dataset, error) {
	if d, ok := c.datasets[name]; ok {
		return d, nil
	}
	prog := obs.NewProgress(c.log, "generating "+name)
	d, err := dataset.LoadOrGenerate(c.cacheDir, name, c.scale, prog.Func())
	if err != nil {
		return nil, err
	}
	prog.Finish()
	c.datasets[name] = d
	return d, nil
}

// resolved returns the machine and (memoized) collective set of a dataset.
// Sharing the set across experiments reuses the Intel profile's expensive
// tuned-decision table.
func (c *expCtx) resolved(d *dataset.Dataset) (machine.Machine, *mpilib.CollectiveSet, error) {
	key := d.Spec.Name
	if s, ok := c.sets[key]; ok {
		return c.machines[key], s, nil
	}
	mach, set, err := d.Spec.Resolve()
	if err != nil {
		return machine.Machine{}, nil, err
	}
	c.machines[key] = mach
	c.sets[key] = set
	return mach, set, nil
}

// evaluation trains/evaluates one (dataset, learner, split-variant) and
// memoizes the result (Table IV and the figures share selectors).
func (c *expCtx) evaluation(dsName, learner, variant string) (*eval.Evaluation, error) {
	key := dsName + "/" + learner + "/" + variant
	if e, ok := c.evals[key]; ok {
		return e, nil
	}
	d, err := c.dataset(dsName)
	if err != nil {
		return nil, err
	}
	mach, set, err := c.resolved(d)
	if err != nil {
		return nil, err
	}
	split, err := eval.SplitFor(d.Spec.Machine)
	if err != nil {
		return nil, err
	}
	trainNodes, err := split.TrainNodes(variant)
	if err != nil {
		return nil, err
	}
	e, err := eval.Evaluate(d, mach, set, learner, trainNodes, split.Test)
	if err != nil {
		return nil, err
	}
	c.evals[key] = e
	return e, nil
}

type experiment struct {
	name string
	desc string
	run  func(c *expCtx) (string, error)
}

func experimentsList() []experiment {
	return []experiment{
		{"table1", "Hardware overview (paper Table I)", runTable1},
		{"table2", "Dataset overview d1-d8 (paper Table II)", runTable2},
		{"table3", "Training and test splits (paper Table III)", runTable3},
		{"table4a", "Prediction quality, large training set (paper Table IVa)", runTable4a},
		{"table4b", "Prediction quality, small training set (paper Table IVb)", runTable4b},
		{"fig2", "Chain-bcast speedup over linear, 32x32 Hydra (paper Fig. 2)", runFig2},
		{"fig4", "Bcast strategies, Open MPI, Hydra (paper Fig. 4)", runFig4},
		{"fig5", "Predicted algorithm map per learner (paper Fig. 5)", runFig5},
		{"fig6", "Allreduce strategies, Intel MPI, Hydra (paper Fig. 6)", runFig6},
		{"fig7", "Allreduce strategies, Open MPI, Jupiter (paper Fig. 7)", runFig7},
		{"fig8", "Bcast strategies, Open MPI, SuperMUC-NG (paper Fig. 8)", runFig8},
		{"budget", "Benchmark-budget accounting (paper SecV)", runBudget},
		{"ablation", "Learner ablation: rejected learners vs the paper's three", runAblation},
		{"strategies", "Selection-strategy ablation: paper vs rejected strategies (SecIII-A)", runStrategies},
		{"modelerr", "Regression-model error metrics (MAE/RMSE/MAPE)", runModelErr},
		{"importance", "Permutation feature importance", runImportance},
		{"crossval", "K-fold cross-validation by node count (SecV)", runCrossVal},
		{"placement", "Block vs cyclic rank placement changes the best algorithm (SecI)", runPlacement},
		{"robustness", "Speedup of predicted vs default under increasing fault intensity", runRobustness},
		{"drift_recovery", "Online retraining loop recovers from a mid-run machine shift (BENCH_retrain.json)", runDriftRecovery},
	}
}

func main() {
	var (
		cacheFlag   = flag.String("cache", "results/cache", "dataset cache directory")
		outFlag     = flag.String("out", "results", "output directory for text artifacts")
		scaleFlag   = flag.String("scale", "mid", "dataset scale: smoke, mid, full")
		onlyFlag    = flag.String("only", "", "comma-separated subset of experiments (default: all)")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
		metricsFlag = flag.String("metrics", "", "write a metrics-registry snapshot to this file (.json for JSON)")
		workersFlag = flag.Int("fitworkers", 0, "fit-worker pool size for model training (0 = GOMAXPROCS, 1 = serial)")
		verboseFlag = flag.Bool("v", false, "verbose (debug) logging")
		quietFlag   = flag.Bool("quiet", false, "suppress informational logging")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verboseFlag, *quietFlag))
	core.SetFitWorkers(*workersFlag)

	all := experimentsList()
	if *listFlag {
		for _, e := range all {
			fmt.Printf("%-9s %s\n", e.name, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, n := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := newCtx(*cacheFlag, dataset.Scale(*scaleFlag), []string{"knn", "gam", "xgboost"}, log)
	ctx.outDir = *outFlag

	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		out, err := e.run(ctx)
		if err != nil {
			log.Errorf("experiment %s failed: %v", e.name, err)
			failed++
			continue
		}
		header := fmt.Sprintf("== %s: %s ==\n(scale %s, generated %s)\n\n",
			e.name, e.desc, *scaleFlag, time.Now().Format(time.RFC3339))
		text := header + out
		path := filepath.Join(*outFlag, e.name+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			log.Errorf("writing %s: %v", path, err)
			failed++
			continue
		}
		if !*quietFlag {
			fmt.Println(text)
		}
		log.Infof("%s done in %v -> %s", e.name, time.Since(start).Round(time.Millisecond), path)
	}
	if *metricsFlag != "" {
		if err := obs.Default.DumpFile(*metricsFlag); err != nil {
			log.Errorf("writing metrics: %v", err)
			failed++
		} else {
			log.Infof("metrics snapshot -> %s", *metricsFlag)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
