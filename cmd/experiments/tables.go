package main

import (
	"fmt"
	"strings"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/tablefmt"
)

// runTable1 renders the hardware overview (paper Table I) from the machine
// profiles, including the simulated network constants that substitute for
// the real interconnects.
func runTable1(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title: "Table I: Hardware overview (simulated machine models)",
		Headers: []string{"Machine", "n", "Max ppn", "Inter latency", "Node BW", "Stream BW",
			"Eager", "MPI libraries"},
	}
	libs := map[string]string{
		"Hydra":       "Open MPI 4.0.2, Intel MPI 2019",
		"Jupiter":     "Open MPI 4.0.2",
		"SuperMUC-NG": "Open MPI 4.0.2",
	}
	for _, m := range machine.All() {
		t.AddRow(
			m.Name,
			tablefmt.I(m.MaxN),
			tablefmt.I(m.MaxPPN),
			fmt.Sprintf("%.2f us", m.Net.LInter*1e6),
			fmt.Sprintf("%.1f GB/s", 1e-9/m.Net.GNic),
			fmt.Sprintf("%.1f GB/s", 1e-9/m.Net.GInter),
			tablefmt.Bytes(int64(m.Net.Eager)),
			libs[m.Name],
		)
	}
	return t.String(), nil
}

// runTable2 renders the dataset overview (paper Table II) from the cached
// (or freshly generated) datasets.
func runTable2(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title: "Table II: Overview of datasets",
		Headers: []string{"Dataset", "MPI routine", "MPI", "Version", "Machine",
			"#algorithms", "#configs", "#nodes", "#ppn", "#msg sizes", "#samples"},
	}
	for _, spec := range dataset.Specs(c.scale) {
		d, err := c.dataset(spec.Name)
		if err != nil {
			return "", err
		}
		_, set, err := c.resolved(d)
		if err != nil {
			return "", err
		}
		t.AddRow(
			d.Spec.Name,
			"MPI_"+collectiveName(d.Spec.Coll),
			d.Spec.Lib,
			d.Spec.Version,
			d.Spec.Machine,
			tablefmt.I(set.NumAlgs),
			tablefmt.I(len(set.Configs)),
			tablefmt.I(len(d.Spec.Nodes)),
			tablefmt.I(len(d.Spec.PPNs)),
			tablefmt.I(len(d.Spec.Msizes)),
			tablefmt.I(len(d.Samples)),
		)
	}
	return t.String(), nil
}

// runTable3 renders the train/test node splits (paper Table III).
func runTable3(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title:   "Table III: Training and test datasets by machine and number of compute nodes",
		Headers: []string{"Machine", "Full training dataset (n)", "Small training dataset (n)", "Test dataset (n)"},
	}
	for _, s := range eval.Splits() {
		t.AddRow(s.Machine, intList(s.Full), intList(s.Small), intList(s.Test))
	}
	return t.String(), nil
}

// collectiveName capitalizes a collective's MPI routine name.
func collectiveName(coll string) string {
	if coll == "" {
		return coll
	}
	return strings.ToUpper(coll[:1]) + coll[1:]
}

func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}

// runTable4 renders one half of the paper's Table IV: the mean speedup of
// the predicted configuration over the library default, per dataset and
// learner.
func runTable4(c *expCtx, variant string) (string, error) {
	title := "Table IVa: Overall prediction quality, large training dataset (relative speed-up over default; higher is better)"
	if variant == "small" {
		title = "Table IVb: Overall prediction quality, small training dataset"
	}
	headers := []string{"method"}
	names := datasetNames()
	headers = append(headers, names...)
	headers = append(headers, "mean")
	t := &tablefmt.Table{Title: title, Headers: headers}

	for _, learner := range c.learners {
		row := []string{learnerLabel(learner)}
		sum := 0.0
		for _, dn := range names {
			e, err := c.evaluation(dn, learner, variant)
			if err != nil {
				return "", fmt.Errorf("%s/%s: %w", dn, learner, err)
			}
			sp := e.MeanSpeedup()
			sum += sp
			row = append(row, tablefmt.F(sp, 2))
		}
		row = append(row, tablefmt.F(sum/float64(len(names)), 2))
		t.AddRow(row...)
	}
	return t.String(), nil
}

func runTable4a(c *expCtx) (string, error) { return runTable4(c, "full") }
func runTable4b(c *expCtx) (string, error) { return runTable4(c, "small") }

func datasetNames() []string {
	return []string{"d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8"}
}

func learnerLabel(l string) string {
	switch l {
	case "knn":
		return "KNN"
	case "gam":
		return "GAM"
	case "xgboost":
		return "XGBoost"
	case "rf":
		return "RF"
	case "linear":
		return "Linear"
	}
	return l
}

// runBudget reproduces the paper's §V training-budget argument: the a
// priori upper bound on the benchmarking time (#measurements × per-config
// budget) versus the actually consumed simulated time. The same accounting
// is pushed into the metrics registry so a -metrics snapshot carries the
// per-dataset totals.
func runBudget(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title: "Benchmark budget: a-priori upper bound vs consumed simulated time (paper SecV)",
		Headers: []string{"Dataset", "Machine", "#measurements", "#exhausted", "Budget/meas",
			"Upper bound", "Consumed", "Consumed/bound"},
	}
	for _, name := range datasetNames() {
		d, err := c.dataset(name)
		if err != nil {
			return "", err
		}
		opts := bench.DefaultOptions(d.Spec.Machine)
		bound := opts.Budget(len(d.Samples))
		exhausted := d.ExhaustedCount()
		t.AddRow(
			name,
			d.Spec.Machine,
			tablefmt.I(len(d.Samples)),
			tablefmt.I(exhausted),
			fmt.Sprintf("%.1f s", opts.MaxTime),
			fmtDuration(bound),
			fmtDuration(d.Consumed),
			tablefmt.F(d.Consumed/bound, 3),
		)
		labels := obs.Labels{"dataset": name, "machine": d.Spec.Machine}
		obs.Default.Gauge("budget_bound_seconds", labels).Set(bound)
		obs.Default.Gauge("budget_consumed_seconds", labels).Set(d.Consumed)
		obs.Default.Gauge("budget_consumed_over_bound", labels).Set(d.Consumed / bound)
		obs.Default.Counter("budget_measurements_total", labels).Add(int64(len(d.Samples)))
		obs.Default.Counter("budget_exhausted_total", labels).Add(int64(exhausted))
	}
	out := t.String()
	out += "\nThe consumed time is far below the bound because most instances finish their\n" +
		"repetitions in microseconds-to-milliseconds - the effect the paper reports as\n" +
		"\"the training on SuperMUC-NG would require at most ~3 hours, but took 56 minutes\".\n" +
		"Note the repetition scale factor: the paper caps every measurement at 500\n" +
		"repetitions, while the simulated datasets cap at 5 (full scale) or 2 (mid scale)\n" +
		"noise-perturbed repetitions, so consumed/bound here is lower by roughly that\n" +
		"100-250x factor on instances the budget never truncates.\n"
	return out, nil
}

func fmtDuration(sec float64) string {
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%.1f h", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%.1f min", sec/60)
	default:
		return fmt.Sprintf("%.1f s", sec)
	}
}

// runAblation compares the paper's three learners against the rejected
// baselines (random forest from the prior work, linear regression) on two
// representative datasets.
func runAblation(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title:   "Ablation: mean speedup over default, paper learners vs rejected baselines",
		Headers: []string{"method", "d1 (Bcast/OMPI/Hydra)", "d2 (Allreduce/OMPI/Hydra)"},
	}
	for _, learner := range []string{"knn", "gam", "xgboost", "rf", "linear"} {
		row := []string{learnerLabel(learner)}
		for _, dn := range []string{"d1", "d2"} {
			e, err := c.evaluation(dn, learner, "full")
			if err != nil {
				return "", err
			}
			row = append(row, tablefmt.F(e.MeanSpeedup(), 2))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}
