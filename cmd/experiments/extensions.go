package main

import (
	"fmt"
	"strings"

	"mpicollpred/internal/core"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/tablefmt"
)

// runStrategies compares the paper's argmin-of-runtime-regressors against
// the two selection strategies §III-A discusses and rejects: the prior-work
// ratio-to-default regression [9] and direct best-algorithm classification.
func runStrategies(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title:   "Selection-strategy ablation (SecIII-A): mean speedup over default / mean vs best",
		Headers: []string{"strategy", "d1 speedup", "d1 vs-best", "d2 speedup", "d2 vs-best"},
	}
	type scored struct {
		name    string
		speedup map[string]float64
		vsBest  map[string]float64
	}
	rows := []scored{
		{name: "argmin-runtime (paper, XGBoost)", speedup: map[string]float64{}, vsBest: map[string]float64{}},
		{name: "ratio-to-default ([9], XGBoost)", speedup: map[string]float64{}, vsBest: map[string]float64{}},
		{name: "direct classification (5-NN)", speedup: map[string]float64{}, vsBest: map[string]float64{}},
	}
	for _, dn := range []string{"d1", "d2"} {
		d, err := c.dataset(dn)
		if err != nil {
			return "", err
		}
		mach, set, err := c.resolved(d)
		if err != nil {
			return "", err
		}
		split, err := eval.SplitFor(d.Spec.Machine)
		if err != nil {
			return "", err
		}
		paper, err := core.Train(d, set, "xgboost", split.Full)
		if err != nil {
			return "", err
		}
		ratio, err := core.TrainRatio(d, mach, set, "xgboost", split.Full)
		if err != nil {
			return "", err
		}
		clf, err := core.TrainClassifier(d, set, split.Full, 5)
		if err != nil {
			return "", err
		}
		for i, strat := range []core.Strategy{paper, ratio, clf} {
			spSum, vbSum, n := 0.0, 0.0, 0
			for _, in := range d.Instances() {
				test := false
				for _, tn := range split.Test {
					if in.Nodes == tn {
						test = true
					}
				}
				if !test {
					continue
				}
				pred := strat.Select(in.Nodes, in.PPN, in.Msize)
				predT, ok := d.Lookup(pred.ConfigID, in.Nodes, in.PPN, in.Msize)
				if !ok {
					return "", fmt.Errorf("strategy %s selected unmeasured config %d", strat.Name(), pred.ConfigID)
				}
				topo, err := mach.Topo(in.Nodes, in.PPN)
				if err != nil {
					return "", err
				}
				defT, _ := d.Lookup(set.Decide(mach, topo, in.Msize), in.Nodes, in.PPN, in.Msize)
				_, bestT, _ := d.Best(set, in.Nodes, in.PPN, in.Msize)
				spSum += defT / predT
				vbSum += predT / bestT
				n++
			}
			rows[i].speedup[dn] = spSum / float64(n)
			rows[i].vsBest[dn] = vbSum / float64(n)
		}
	}
	for _, r := range rows {
		t.AddRow(r.name,
			tablefmt.F(r.speedup["d1"], 2), tablefmt.F(r.vsBest["d1"], 2),
			tablefmt.F(r.speedup["d2"], 2), tablefmt.F(r.vsBest["d2"], 2))
	}
	out := t.String()
	out += "\n\"vs best\" is the mean measured time of the selected configuration normalized to\n" +
		"the exhaustive best (1.00 = always optimal). The paper's strategy should dominate\n" +
		"or match the rejected alternatives, which motivated its design.\n"
	return out, nil
}

// runModelErr reports the classical regression metrics the paper mentions
// (MAE/RMSE) plus MAPE, per learner on d1's held-out instances.
func runModelErr(c *expCtx) (string, error) {
	t := &tablefmt.Table{
		Title:   "Model error on held-out instances (d1, all configurations x test instances)",
		Headers: []string{"method", "MAE", "RMSE", "MAPE", "#predictions"},
	}
	d, err := c.dataset("d1")
	if err != nil {
		return "", err
	}
	_, set, err := c.resolved(d)
	if err != nil {
		return "", err
	}
	split, err := eval.SplitFor(d.Spec.Machine)
	if err != nil {
		return "", err
	}
	for _, learner := range append(c.learners, "rf", "linear") {
		sel, err := core.Train(d, set, learner, split.Full)
		if err != nil {
			return "", err
		}
		me, err := eval.ModelError(d, set, sel, split.Test)
		if err != nil {
			return "", err
		}
		t.AddRow(learnerLabel(learner),
			fmt.Sprintf("%.1f us", me.MAE*1e6),
			fmt.Sprintf("%.1f us", me.RMSE*1e6),
			tablefmt.F(me.MAPE, 3),
			tablefmt.I(me.N))
	}
	return t.String(), nil
}

// runCrossVal reports k-fold cross-validation (grouped by node count, the
// deployment-faithful split) for the three paper learners on d1.
func runCrossVal(c *expCtx) (string, error) {
	d, err := c.dataset("d1")
	if err != nil {
		return "", err
	}
	t := &tablefmt.Table{
		Title:   "4-fold cross-validation by node count, d1 (prediction MAPE per fold)",
		Headers: []string{"method", "fold 1", "fold 2", "fold 3", "fold 4", "mean"},
	}
	for _, learner := range c.learners {
		folds, err := eval.CrossValidate(d, learner, 4)
		if err != nil {
			return "", err
		}
		row := []string{learnerLabel(learner)}
		for _, f := range folds {
			row = append(row, tablefmt.F(f.MAPE, 3))
		}
		for len(row) < 5 {
			row = append(row, "-")
		}
		row = append(row, tablefmt.F(eval.MeanMAPE(folds), 3))
		t.AddRow(row...)
	}
	out := t.String()
	out += "\nstable fold errors indicate the models do not overfit particular node counts,\n" +
		"the check the paper describes performing during model building (SecV).\n"
	return out, nil
}

// runImportance reports permutation feature importance of the GAM selector
// on d1, reproducing the paper's remark that message size dominates.
func runImportance(c *expCtx) (string, error) {
	var b strings.Builder
	for _, dn := range []string{"d1", "d2"} {
		d, err := c.dataset(dn)
		if err != nil {
			return "", err
		}
		_, set, err := c.resolved(d)
		if err != nil {
			return "", err
		}
		split, err := eval.SplitFor(d.Spec.Machine)
		if err != nil {
			return "", err
		}
		sel, err := core.Train(d, set, "gam", split.Full)
		if err != nil {
			return "", err
		}
		imp, err := eval.PermutationImportance(d, set, sel, split.Test)
		if err != nil {
			return "", err
		}
		t := &tablefmt.Table{
			Title:   fmt.Sprintf("Permutation feature importance, %s (GAM selector):", dn),
			Headers: []string{"feature", "MAPE increase when scrambled"},
		}
		for _, f := range imp {
			t.AddRow(f.Feature, tablefmt.F(f.Degradation, 3))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("degradation = increase in mean absolute percentage prediction error when the feature\n" +
		"is permuted across test instances; the paper notes message size is usually dominant.\n")
	return b.String(), nil
}
