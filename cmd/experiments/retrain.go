package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mpicollpred/internal/retrain"
)

// runDriftRecovery runs the closed-loop drift scenario (internal/retrain):
// phase A observes a faithful machine, phase B shifts the machine via a
// fault plan until the loop detects drift, retrains, and redeploys, and
// phase C verifies the detector settles back to ok on the retrained model.
// The scenario runs once per fit-pool size and cross-checks that the
// candidate snapshots are byte-identical; the JSON report additionally
// lands in <out>/BENCH_retrain.json. Work happens in throwaway directories
// so the shared dataset cache only ever holds the benchmark grids.
func runDriftRecovery(c *expCtx) (string, error) {
	cacheDir, err := os.MkdirTemp("", "mpicoll-drift-cache-")
	if err != nil {
		return "", err
	}
	defer func() { _ = os.RemoveAll(cacheDir) }()
	workDir, err := os.MkdirTemp("", "mpicoll-drift-work-")
	if err != nil {
		return "", err
	}
	defer func() { _ = os.RemoveAll(workDir) }()

	rep, err := retrain.RunScenario(retrain.ScenarioOptions{
		CacheDir: cacheDir,
		WorkDir:  workDir,
	})
	if err != nil {
		return "", err
	}
	if !rep.Deterministic {
		return "", fmt.Errorf("candidate snapshots differ across fit pools %v", rep.FitWorkers)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	bench := filepath.Join(c.outDir, "BENCH_retrain.json")
	if err := os.WriteFile(bench, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	c.log.Infof("drift-recovery report -> %s", bench)
	return rep.Render(), nil
}
