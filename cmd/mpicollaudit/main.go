// Command mpicollaudit analyzes the selection audit log written by
// mpicollserve (-audit): it summarizes what was served, replays the log
// through the live drift monitors, and optionally re-measures every unique
// decision in the simulator to compare observed against predicted runtimes.
//
// All three reports are byte-stable for a given log, so CI can diff them.
//
// With -follow, the command instead tails the log like `tail -f`: each
// record is re-emitted as one JSON line the moment it is appended, across
// rotations, until interrupted — the interactive view of the same streaming
// reader the online retraining loop runs on.
//
// Usage:
//
//	mpicollaudit -log audit.jsonl -summary
//	mpicollaudit -log audit.jsonl -drift
//	mpicollaudit -log audit.jsonl -replay -reps 3 -out replay.txt
//	mpicollaudit -log audit.jsonl -follow
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mpicollpred/internal/audit"
)

func main() {
	var (
		logPath = flag.String("log", "audit.jsonl", "audit log to analyze (JSONL, from mpicollserve -audit)")
		summary = flag.Bool("summary", false, "print selection distributions, cache and fallback breakdowns")
		drift   = flag.Bool("drift", false, "replay the log through the serving drift monitors")
		replay  = flag.Bool("replay", false, "re-measure unique decisions in the simulator (observed vs predicted)")
		follow  = flag.Bool("follow", false, "tail the log, printing records as they are appended (Ctrl-C stops)")
		reps    = flag.Int("reps", 2, "replay: simulated repetitions per measurement")
		maxInst = flag.Int("max-instances", 64, "replay: cap on unique decisions measured")
		out     = flag.String("out", "", "write the report here instead of stdout")
	)
	flag.Parse()
	if *follow {
		if *summary || *drift || *replay {
			fmt.Fprintln(os.Stderr, "mpicollaudit: -follow streams raw records and excludes the batch reports")
			os.Exit(2)
		}
		runFollow(*logPath)
		return
	}
	if !*summary && !*drift && !*replay {
		fmt.Fprintln(os.Stderr, "mpicollaudit: pick at least one of -summary, -drift, -replay, -follow")
		os.Exit(2)
	}

	recs, err := audit.ReadLog(*logPath)
	fail(err)
	if len(recs) == 0 {
		fail(fmt.Errorf("no records in %s", *logPath))
	}

	var report string
	if *summary {
		report += audit.Summarize(recs).Render()
	}
	if *drift {
		if report != "" {
			report += "\n"
		}
		report += audit.Drift(recs).Render()
	}
	if *replay {
		rep, err := audit.Replay(recs, audit.ReplayOptions{Reps: *reps, MaxInstances: *maxInst})
		fail(err)
		if report != "" {
			report += "\n"
		}
		report += rep.Render()
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	fail(os.WriteFile(*out, []byte(report), 0o644))
	fmt.Fprintf(os.Stderr, "mpicollaudit: report -> %s\n", *out)
}

// runFollow tails the audit log until SIGINT/SIGTERM, emitting one JSON
// line per record. It survives rotations and waits for the file to appear,
// so it can be started before the server.
func runFollow(path string) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	enc := json.NewEncoder(os.Stdout)
	err := audit.Follow(ctx, path, audit.FollowOptions{WaitForFile: true}, func(rec audit.Record) error {
		return enc.Encode(rec)
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fail(err)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicollaudit: %v\n", err)
		os.Exit(1)
	}
}
