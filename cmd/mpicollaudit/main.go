// Command mpicollaudit analyzes the selection audit log written by
// mpicollserve (-audit): it summarizes what was served, replays the log
// through the live drift monitors, and optionally re-measures every unique
// decision in the simulator to compare observed against predicted runtimes.
//
// All three reports are byte-stable for a given log, so CI can diff them.
//
// Usage:
//
//	mpicollaudit -log audit.jsonl -summary
//	mpicollaudit -log audit.jsonl -drift
//	mpicollaudit -log audit.jsonl -replay -reps 3 -out replay.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"mpicollpred/internal/audit"
)

func main() {
	var (
		logPath = flag.String("log", "audit.jsonl", "audit log to analyze (JSONL, from mpicollserve -audit)")
		summary = flag.Bool("summary", false, "print selection distributions, cache and fallback breakdowns")
		drift   = flag.Bool("drift", false, "replay the log through the serving drift monitors")
		replay  = flag.Bool("replay", false, "re-measure unique decisions in the simulator (observed vs predicted)")
		reps    = flag.Int("reps", 2, "replay: simulated repetitions per measurement")
		maxInst = flag.Int("max-instances", 64, "replay: cap on unique decisions measured")
		out     = flag.String("out", "", "write the report here instead of stdout")
	)
	flag.Parse()
	if !*summary && !*drift && !*replay {
		fmt.Fprintln(os.Stderr, "mpicollaudit: pick at least one of -summary, -drift, -replay")
		os.Exit(2)
	}

	recs, err := audit.ReadLog(*logPath)
	fail(err)
	if len(recs) == 0 {
		fail(fmt.Errorf("no records in %s", *logPath))
	}

	var report string
	if *summary {
		report += audit.Summarize(recs).Render()
	}
	if *drift {
		if report != "" {
			report += "\n"
		}
		report += audit.Drift(recs).Render()
	}
	if *replay {
		rep, err := audit.Replay(recs, audit.ReplayOptions{Reps: *reps, MaxInstances: *maxInst})
		fail(err)
		if report != "" {
			report += "\n"
		}
		report += rep.Render()
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	fail(os.WriteFile(*out, []byte(report), 0o644))
	fmt.Fprintf(os.Stderr, "mpicollaudit: report -> %s\n", *out)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpicollaudit: %v\n", err)
		os.Exit(1)
	}
}
