// Command mpicollbench is the benchmark step of the framework: it measures
// every algorithm configuration of a library's collective over the full
// instance grid of one of the paper's datasets (Table II, d1–d8) and caches
// the result as CSV.
//
// Usage:
//
//	mpicollbench -dataset d1 -scale mid -cache results/cache
//	mpicollbench -dataset all -scale mid -cache results/cache
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpicollpred/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "all", "dataset to generate (d1..d8, or 'all')")
		scale   = flag.String("scale", "mid", "grid scale: smoke, mid, or full")
		cache   = flag.String("cache", "results/cache", "cache directory for generated datasets")
		quiet   = flag.Bool("q", false, "suppress progress output")
		listAll = flag.Bool("list", false, "list dataset specs and exit")
	)
	flag.Parse()

	sc := dataset.Scale(*scale)
	specs := dataset.Specs(sc)

	if *listAll {
		fmt.Printf("%-4s %-10s %-10s %-12s %6s %5s %8s\n",
			"name", "library", "collective", "machine", "#nodes", "#ppn", "#msizes")
		for _, s := range specs {
			fmt.Printf("%-4s %-10s %-10s %-12s %6d %5d %8d\n",
				s.Name, s.Lib, s.Coll, s.Machine, len(s.Nodes), len(s.PPNs), len(s.Msizes))
		}
		return
	}

	var names []string
	if *name == "all" {
		for _, s := range specs {
			names = append(names, s.Name)
		}
	} else {
		names = []string{*name}
	}

	for _, n := range names {
		start := time.Now()
		progress := func(done, total int) {
			if !*quiet && done%2000 < 40 {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d measurements (%.0f%%) ", n, done, total,
					100*float64(done)/float64(total))
			}
		}
		d, err := dataset.LoadOrGenerate(*cache, n, sc, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\nmpicollbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%-60s\r", "")
		}
		fmt.Printf("%s: %d samples, %.1f simulated benchmark seconds, wall %v\n",
			n, len(d.Samples), d.Consumed, time.Since(start).Round(time.Second))
	}
}
