// Command mpicollbench is the benchmark step of the framework: it measures
// every algorithm configuration of a library's collective over the full
// instance grid of one of the paper's datasets (Table II, d1–d8) and caches
// the result as CSV.
//
// Usage:
//
//	mpicollbench -dataset d1 -scale mid -cache results/cache
//	mpicollbench -dataset all -scale mid -cache results/cache
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/obs"
)

func main() {
	var (
		name    = flag.String("dataset", "all", "dataset to generate (d1..d8, or 'all')")
		scale   = flag.String("scale", "mid", "grid scale: smoke, mid, or full")
		cache   = flag.String("cache", "results/cache", "cache directory for generated datasets")
		quiet   = flag.Bool("q", false, "suppress progress output")
		quiet2  = flag.Bool("quiet", false, "alias for -q")
		verbose = flag.Bool("v", false, "verbose (debug) logging")
		metrics = flag.String("metrics", "", "write a metrics-registry snapshot to this file (.json for JSON)")
		listAll = flag.Bool("list", false, "list dataset specs and exit")
	)
	flag.Parse()
	*quiet = *quiet || *quiet2
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	sc := dataset.Scale(*scale)
	specs := dataset.Specs(sc)

	if *listAll {
		fmt.Printf("%-4s %-10s %-10s %-12s %6s %5s %8s\n",
			"name", "library", "collective", "machine", "#nodes", "#ppn", "#msizes")
		for _, s := range specs {
			fmt.Printf("%-4s %-10s %-10s %-12s %6d %5d %8d\n",
				s.Name, s.Lib, s.Coll, s.Machine, len(s.Nodes), len(s.PPNs), len(s.Msizes))
		}
		return
	}

	var names []string
	if *name == "all" {
		for _, s := range specs {
			names = append(names, s.Name)
		}
	} else {
		names = []string{*name}
	}

	for _, n := range names {
		start := time.Now()
		prog := obs.NewProgress(log, n)
		d, err := dataset.LoadOrGenerate(*cache, n, sc, prog.Func())
		if err != nil {
			log.Errorf("mpicollbench: %v", err)
			os.Exit(1)
		}
		prog.Finish()
		fmt.Printf("%s: %d samples (%d budget-exhausted), %.1f simulated benchmark seconds, wall %v\n",
			n, len(d.Samples), d.ExhaustedCount(), d.Consumed, time.Since(start).Round(time.Second))
	}
	if *metrics != "" {
		if err := obs.Default.DumpFile(*metrics); err != nil {
			log.Errorf("writing metrics: %v", err)
			os.Exit(1)
		}
		log.Infof("metrics snapshot -> %s", *metrics)
	}
}
