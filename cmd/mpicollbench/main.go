// Command mpicollbench is the benchmark step of the framework: it measures
// every algorithm configuration of a library's collective over the full
// instance grid of one of the paper's datasets (Table II, d1–d8) and caches
// the result as CSV.
//
// The run is crash-safe: every completed measurement is appended to a
// progress journal next to the cache file, SIGINT checkpoints cleanly, and
// -resume continues an interrupted run without re-measuring (seeds depend
// only on the configuration and instance, so a resumed run produces a cache
// byte-identical to an uninterrupted one). -faults injects deterministic
// hardware faults (stragglers, degraded NICs, noise bursts, clock outliers)
// into the simulated machine; fault-perturbed caches are written under a
// fault-specific tag so they never clobber the clean cache.
//
// Generation shards the measurement grid across -benchworkers workers
// (default: GOMAXPROCS). Every cell's noise seed is derived from its content
// and results are committed in grid order, so the caches, journals and
// metrics are byte-identical at any worker count; -benchout generates one
// dataset serially and in parallel, proves the identity with a byte compare,
// and writes the wall-clock speedup report (BENCH_bench.json in CI).
//
// Usage:
//
//	mpicollbench -dataset d1 -scale mid -cache results/cache
//	mpicollbench -dataset all -scale mid -cache results/cache
//	mpicollbench -dataset d1 -scale smoke -faults "straggler:node=0,factor=4" -cache /tmp/cache
//	mpicollbench -dataset d1 -scale mid -resume -cache results/cache
//	mpicollbench -dataset d3 -scale mid -benchworkers 4 -benchout BENCH_bench.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/obs"
)

func main() {
	var (
		name       = flag.String("dataset", "all", "dataset to generate (d1..d8, or 'all')")
		scale      = flag.String("scale", "mid", "grid scale: smoke, mid, or full")
		cache      = flag.String("cache", "results/cache", "cache directory for generated datasets")
		faultSpec  = flag.String("faults", "", "fault plan, e.g. 'straggler:node=0,factor=4;noise:sigma=0.3' (see internal/fault)")
		resume     = flag.Bool("resume", false, "resume an interrupted run from its progress journal")
		maxSamples = flag.Int("max-samples", 0, "stop after this many fresh measurements (0 = no limit; for testing resume)")
		retries    = flag.Int("outlier-retries", 0, "re-measurement budget for outlier repetitions (0 = off)")
		outlierK   = flag.Float64("outlier-k", 0, "MAD multiple beyond which a repetition is an outlier (0 = default)")
		workers    = flag.Int("benchworkers", 0, "measurement workers sharding the grid (0 = GOMAXPROCS); never changes results")
		benchout   = flag.String("benchout", "", "generate serially and in parallel, verify byte-identity, write a speedup report here (single dataset only)")
		minSpeedup = flag.Float64("min-speedup", 0, "with -benchout: fail unless the parallel speedup reaches this factor (0 = report only)")
		validate   = flag.Bool("validate", false, "validate the dataset after load/generate; exit nonzero on bad rows")
		quiet      = flag.Bool("q", false, "suppress progress output")
		quiet2     = flag.Bool("quiet", false, "alias for -q")
		verbose    = flag.Bool("v", false, "verbose (debug) logging")
		metrics    = flag.String("metrics", "", "write a metrics-registry snapshot to this file (.json for JSON)")
		listAll    = flag.Bool("list", false, "list dataset specs and exit")
	)
	flag.Parse()
	*quiet = *quiet || *quiet2
	log := obs.NewLogger(os.Stderr, obs.FlagLevel(*verbose, *quiet))

	sc := dataset.Scale(*scale)
	specs := dataset.Specs(sc)

	if *listAll {
		fmt.Printf("%-4s %-10s %-10s %-12s %6s %5s %8s\n",
			"name", "library", "collective", "machine", "#nodes", "#ppn", "#msizes")
		for _, s := range specs {
			fmt.Printf("%-4s %-10s %-10s %-12s %6d %5d %8d\n",
				s.Name, s.Lib, s.Coll, s.Machine, len(s.Nodes), len(s.PPNs), len(s.Msizes))
		}
		return
	}

	plan, err := fault.Parse(*faultSpec)
	if err != nil {
		log.Errorf("mpicollbench: %v", err)
		os.Exit(2)
	}

	var names []string
	if *name == "all" {
		for _, s := range specs {
			names = append(names, s.Name)
		}
	} else {
		names = []string{*name}
	}

	if *benchout != "" {
		if *name == "all" {
			log.Errorf("mpicollbench: -benchout needs exactly one -dataset, not 'all'")
			os.Exit(2)
		}
		os.Exit(runBenchSelfCheck(log, *name, sc, plan, *retries, *outlierK,
			*workers, *benchout, *minSpeedup))
	}

	// SIGINT/SIGTERM flip a flag the generator polls between measurements,
	// so the journal is always left at a measurement boundary.
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		interrupted.Store(true)
		signal.Stop(sigCh) // a second ^C kills immediately
	}()

	exitCode := 0
	for _, n := range names {
		code := runOne(log, n, sc, *cache, plan, *resume, *maxSamples, *retries, *outlierK, *workers, *validate, &interrupted)
		if code != 0 {
			exitCode = code
			break
		}
	}
	if *metrics != "" {
		if err := obs.Default.DumpFile(*metrics); err != nil {
			log.Errorf("writing metrics: %v", err)
			os.Exit(1)
		}
		log.Infof("metrics snapshot -> %s", *metrics)
	}
	os.Exit(exitCode)
}

// runOne loads or (resumably) generates one dataset and reports it. The
// returned code is 0 on success, 130 on a clean interrupt (journal saved),
// 1 on error, 3 on validation failure.
func runOne(log *obs.Logger, name string, sc dataset.Scale, cache string,
	plan *fault.Plan, resume bool, maxSamples, retries int, outlierK float64,
	workers int, validate bool, interrupted *atomic.Bool) int {

	start := time.Now()
	spec, err := dataset.SpecByName(name, sc)
	if err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	path := dataset.CachePath(cache, name, sc, faultTag(plan))

	var d *dataset.Dataset
	if f, err := os.Open(path); err == nil {
		d, err = dataset.ReadCSV(f)
		_ = f.Close() // read-only file; the read itself was checked
		if err != nil {
			log.Errorf("mpicollbench: corrupt cache %s: %v", path, err)
			return 1
		}
		if rep := d.Quarantine(); len(rep.Bad) > 0 {
			log.Infof("%s: quarantined %d bad cached rows", name, len(rep.Bad))
			obs.Default.Counter("dataset_quarantined_rows_total",
				obs.Labels{"dataset": name}).Add(int64(len(rep.Bad)))
		}
		log.Infof("%s: loaded %d samples from cache", name, len(d.Samples))
	} else {
		opts := dataset.DefaultGenOptions(spec, sc)
		opts.Faults = plan
		opts.OutlierRetries = retries
		opts.OutlierK = outlierK
		opts.Workers = workers

		fresh := 0
		stop := func() bool {
			if interrupted.Load() {
				return true
			}
			fresh++
			return maxSamples > 0 && fresh > maxSamples
		}
		if err := os.MkdirAll(cache, 0o755); err != nil {
			log.Errorf("mpicollbench: %v", err)
			return 1
		}
		journal := dataset.JournalPath(path)
		prog := obs.NewProgress(log, name)
		d, err = dataset.GenerateResumable(spec, opts, journal, resume, stop, prog.Func())
		if errors.Is(err, dataset.ErrInterrupted) {
			prog.Finish()
			log.Infof("%s: interrupted; progress saved to %s — rerun with -resume", name, journal)
			return 130
		}
		if err != nil {
			log.Errorf("mpicollbench: %v", err)
			return 1
		}
		prog.Finish()
		if err := d.WriteFile(path); err != nil {
			log.Errorf("mpicollbench: saving %s: %v", path, err)
			return 1
		}
		os.Remove(journal) // the cache now holds everything
	}

	fmt.Printf("%s: %d samples (%d budget-exhausted), %.1f simulated benchmark seconds, wall %v\n",
		name, len(d.Samples), d.ExhaustedCount(), d.Consumed, time.Since(start).Round(time.Second))

	if validate {
		rep := d.Validate()
		fmt.Printf("%s: validation: %s\n", name, rep)
		if len(rep.Bad) > 0 {
			return 3
		}
	}
	return 0
}

// benchReport is what -benchout writes (BENCH_bench.json in CI).
type benchReport struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	Samples int    `json:"samples"`
	Workers int    `json:"workers"`
	// SerialSeconds and ParallelSeconds are the wall-clock generation times
	// of the two legs; Speedup is their ratio.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// CSVIdentical reports whether the two legs produced byte-identical CSV
	// encodings — the determinism guarantee of the sharded sweep.
	CSVIdentical bool `json:"csv_identical"`
}

// runBenchSelfCheck generates one dataset twice — serially, then sharded
// across the requested workers — verifies the two CSV encodings are
// byte-identical, and writes the wall-clock speedup report. A byte mismatch
// is a determinism bug and fails the run; minSpeedup > 0 additionally gates
// on the measured speedup (left off by default so single-core dev containers
// still pass).
func runBenchSelfCheck(log *obs.Logger, name string, sc dataset.Scale,
	plan *fault.Plan, retries int, outlierK float64, workers int,
	out string, minSpeedup float64) int {

	spec, err := dataset.SpecByName(name, sc)
	if err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	rep := benchReport{Dataset: name, Scale: string(sc), Workers: workers}
	if rep.Workers <= 0 {
		rep.Workers = runtime.GOMAXPROCS(0)
	}

	gen := func(workers int) (*dataset.Dataset, float64, error) {
		opts := dataset.DefaultGenOptions(spec, sc)
		opts.Faults = plan
		opts.OutlierRetries = retries
		opts.OutlierK = outlierK
		opts.Workers = workers
		// Each leg gets its own metrics registry so the self-check does not
		// double-count the default registry.
		opts.Metrics = bench.NewMetrics(obs.NewRegistry(), obs.Labels{"dataset": name})
		start := time.Now()
		d, err := dataset.Generate(spec, opts, nil)
		return d, time.Since(start).Seconds(), err
	}

	log.Infof("benchout: serial leg (%s/%s, 1 worker)", name, sc)
	serial, serialElapsed, err := gen(1)
	if err != nil {
		log.Errorf("mpicollbench: benchout serial leg: %v", err)
		return 1
	}
	log.Infof("benchout: parallel leg (%d workers)", rep.Workers)
	parallel, parallelElapsed, err := gen(rep.Workers)
	if err != nil {
		log.Errorf("mpicollbench: benchout parallel leg: %v", err)
		return 1
	}

	var sbuf, pbuf bytes.Buffer
	if err := serial.WriteCSV(&sbuf); err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	if err := parallel.WriteCSV(&pbuf); err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	rep.Samples = len(serial.Samples)
	rep.SerialSeconds, rep.ParallelSeconds = serialElapsed, parallelElapsed
	if parallelElapsed > 0 {
		rep.Speedup = serialElapsed / parallelElapsed
	}
	rep.CSVIdentical = bytes.Equal(sbuf.Bytes(), pbuf.Bytes())

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Errorf("mpicollbench: %v", err)
		return 1
	}
	log.Infof("benchout: serial %.3gs, parallel %.3gs at %d workers -> %.2fx, identical=%v -> %s",
		rep.SerialSeconds, rep.ParallelSeconds, rep.Workers, rep.Speedup, rep.CSVIdentical, out)
	if !rep.CSVIdentical {
		log.Errorf("mpicollbench: parallel generation is not byte-identical to serial generation")
		return 1
	}
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		log.Errorf("mpicollbench: speedup %.2fx below the -min-speedup %.2fx floor", rep.Speedup, minSpeedup)
		return 1
	}
	return 0
}

// faultTag derives the cache-file tag for a fault plan: empty (the clean
// cache) for a nil plan, otherwise a short stable hash of the spec so
// distinct plans land in distinct cache files.
func faultTag(plan *fault.Plan) string {
	if plan == nil || len(plan.Faults) == 0 {
		return ""
	}
	h := fnv.New32a()
	h.Write([]byte(plan.String()))
	return fmt.Sprintf("faults-%08x", h.Sum32())
}
