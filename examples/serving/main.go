// Serving: the deployment loop in miniature — train once, snapshot the
// model, serve it as a long-lived tuning service, and query it like a
// cluster scheduler would.
//
//  1. Benchmark a small grid and fit one model per configuration
//     (the benchmark + tuning steps, as in examples/quickstart).
//  2. Persist the trained selector as a snapshot file
//     (what `mpicolltune -save` does).
//  3. Boot the tuning service on the snapshot, in-process
//     (what `mpicollserve -models` does).
//  4. Ask it over HTTP which broadcast algorithm an unseen allocation
//     should use — twice, to show the selection cache at work.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/serve"
)

func main() {
	// Benchmark + train (see examples/quickstart for the full story).
	spec, err := dataset.SpecByName("d1", dataset.ScaleSmoke)
	if err != nil {
		log.Fatal(err)
	}
	spec.Nodes = []int{2, 4, 6, 8}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 1024, 16384, 262144, 1048576}

	fmt.Println("benchmarking and training (simulated Hydra, GAM learner)...")
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, MaxTime: 1, SyncJitter: 3e-7}, nil)
	if err != nil {
		log.Fatal(err)
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	trainNodes := []int{2, 4, 8}
	sel, err := core.Train(ds, set, "gam", trainNodes)
	if err != nil {
		log.Fatal(err)
	}
	sel.SetFallback(mach, set)

	// Snapshot it: from here on, nothing needs the dataset or a training
	// pass — this file is all a serving process loads.
	dir, err := os.MkdirTemp("", "mpicollserve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "d1-gam.snap")
	fp := core.FingerprintFor(ds, "gam", trainNodes)
	if err := sel.SaveSnapshot(snap, fp); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot -> %s (%d bytes)\n  %s\n\n", snap, st.Size(), fp)

	// Boot the tuning service on the snapshot.
	srv, err := serve.New(serve.Options{SnapshotPaths: []string{snap}})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("tuning service up on %s\n\n", base)

	// Query it like a scheduler: an allocation of 6 nodes (never in the
	// training split) about to broadcast 64 KiB.
	url := base + "/v1/select?nodes=6&ppn=4&msize=65536"
	for i := 1; i <= 2; i++ {
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		var dec serve.SelectResponse
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			log.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
		pred := "library default (guardrail fallback)"
		if dec.PredictedSeconds != nil {
			pred = fmt.Sprintf("predicted %.3gs", *dec.PredictedSeconds)
		}
		fmt.Printf("query %d: %s -> use %q (config %d, %s, cached=%v)\n",
			i, url, dec.Label, dec.ConfigID, pred, dec.Cached)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe second query is a cache hit: the service remembers answered")
	fmt.Println("selections per (model, nodes, ppn, msize) until the next hot reload.")
}
