// bcast_tuning reproduces the motivation of the paper's Fig. 2 as a
// stand-alone study: how much do the chain broadcast's algorithmic
// parameters (segment size, number of chains) matter, compared to the
// basic linear broadcast?
//
// It sweeps the parameter grid by direct simulation on the Hydra profile
// and prints the speedup matrix for a large allocation.
//
// Run with: go run ./examples/bcast_tuning
package main

import (
	"fmt"
	"log"

	"mpicollpred/internal/coll"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
)

func main() {
	mach := machine.Hydra()
	topo, err := mach.Topo(16, 16) // 256 processes
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine()
	msizes := []int64{4096, 65536, 1048576, 4194304}
	segs := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}
	chains := []int{2, 4, 8, 16}

	linear := mpilib.Config{ID: 1, AlgID: 1, Name: "basic_linear", Gen: coll.BcastLinear}
	fmt.Printf("chain-broadcast speedup over linear broadcast, %d x %d processes, %s profile\n\n",
		topo.Nodes, topo.PPN, mach.Name)

	for _, m := range msizes {
		linT, err := mpilib.SimulateOnce(eng, linear, mach.Net, topo, m, 42, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("message size %d bytes (linear: %.4gs)\n", m, linT)
		fmt.Printf("  %-10s", "seg\\chains")
		for _, ch := range chains {
			fmt.Printf("%8d", ch)
		}
		fmt.Println()
		for _, seg := range segs {
			fmt.Printf("  %-10d", seg)
			for _, ch := range chains {
				cfg := mpilib.Config{ID: 2, AlgID: 2, Name: "chain",
					Params: coll.Params{Seg: seg, Fanout: ch}, Gen: coll.BcastChain}
				t, err := mpilib.SimulateOnce(eng, cfg, mach.Net, topo, m, 42, true)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%8.1f", linT/t)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("for large messages the right (segment size, chains) choice is worth an order")
	fmt.Println("of magnitude - which is why the selector must model algorithmic parameters.")
}
