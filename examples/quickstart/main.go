// Quickstart: the complete framework loop in miniature.
//
//  1. Benchmark every broadcast configuration of the Open MPI profile on a
//     small grid of allocations (the benchmark step).
//  2. Fit one GAM regression model per configuration (the tuning step).
//  3. Select algorithms for an allocation that was never benchmarked, and
//     compare the selection against the library's default decision logic
//     and the true best.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
)

func main() {
	// The benchmark step: an inline dataset spec (a scaled-down d1).
	spec, err := dataset.SpecByName("d1", dataset.ScaleSmoke)
	if err != nil {
		log.Fatal(err)
	}
	spec.Nodes = []int{2, 4, 6, 8}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 1024, 16384, 262144, 1048576}

	fmt.Println("benchmarking the Open MPI broadcast portfolio (simulated Hydra)...")
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, MaxTime: 1, SyncJitter: 3e-7}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d measurements, %.2f simulated benchmark seconds (%d budget-exhausted)\n",
		len(ds.Samples), ds.Consumed, ds.ExhaustedCount())
	fmt.Printf("  a-priori upper bound: %.0f s\n\n",
		bench.Options{MaxTime: 1}.Budget(len(ds.Samples)))

	mach, set, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	// The tuning step: one regression model per algorithm configuration.
	sel, err := core.Train(ds, set, "gam", []int{2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %d GAM models in %.3g s wall time\n\n", len(sel.Configs()), sel.FitWall)

	// Apply to an unseen allocation: 6 nodes were never in the training set.
	const nodes, ppn = 6, 4
	fmt.Printf("selections for an unseen allocation (%d nodes x %d ppn):\n\n", nodes, ppn)
	fmt.Printf("%-8s  %-34s  %-34s  %s\n", "msize", "predicted", "default logic", "true best")
	topo, err := mach.Topo(nodes, ppn)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range spec.Msizes {
		pred := sel.Select(nodes, ppn, m)
		predT, _ := ds.Lookup(pred.ConfigID, nodes, ppn, m)

		defID := set.Decide(mach, topo, m)
		defCfg, _ := set.Config(defID)
		defT, _ := ds.Lookup(defID, nodes, ppn, m)

		bestID, bestT, _ := ds.Best(set, nodes, ppn, m)
		bestCfg, _ := set.Config(bestID)

		fmt.Printf("%-8d  %-24s %8.3gs  %-24s %8.3gs  %-24s %.3gs\n",
			m, pred.Label, predT, defCfg.Label(), defT, bestCfg.Label(), bestT)
	}
	fmt.Println("\nthe predicted configuration should track the true best much more closely")
	fmt.Println("than the hard-coded default - the paper's headline result.")
}
