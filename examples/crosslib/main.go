// crosslib compares the two simulated MPI library profiles on the same
// machine: how good are their *default* decision logics relative to each
// library's own exhaustive best?
//
// It reproduces, in miniature, the paper's observation that the Open MPI
// fixed rules leave large factors on the table while the Intel-style tuned
// decision tables are near-optimal.
//
// Run with: go run ./examples/crosslib
package main

import (
	"fmt"
	"log"
	"math"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
)

func main() {
	mach := machine.Hydra()
	topo, err := mach.Topo(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine()
	msizes := []int64{16, 1024, 16384, 262144, 4194304}

	fmt.Printf("default decision logic vs exhaustive best, allreduce, %d x %d, %s\n\n",
		topo.Nodes, topo.PPN, mach.Name)
	fmt.Printf("%-9s  %-28s %-12s  %-28s %s\n", "msize", "Open MPI default", "(x best)", "Intel MPI default", "(x best)")

	ompi, _ := mpilib.OpenMPI().Collective(mpilib.Allreduce)
	impi, _ := mpilib.IntelMPI().Collective(mpilib.Allreduce)

	for _, m := range msizes {
		row := fmt.Sprintf("%-9d", m)
		for _, set := range []*mpilib.CollectiveSet{ompi, impi} {
			defID := set.Decide(mach, topo, m)
			defCfg, err := set.Config(defID)
			if err != nil {
				log.Fatal(err)
			}
			defT, err := mpilib.SimulateOnce(eng, defCfg, mach.Net, topo, m, 7, false)
			if err != nil {
				log.Fatal(err)
			}
			best := math.Inf(1)
			for _, c := range set.Selectable() {
				t, err := mpilib.SimulateOnce(eng, c, mach.Net, topo, m, 7, false)
				if err != nil {
					log.Fatal(err)
				}
				if t < best {
					best = t
				}
			}
			row += fmt.Sprintf("  %-28s %-12s", defCfg.Label(), fmt.Sprintf("%.2fx", defT/best))
		}
		fmt.Println(row)
	}
	fmt.Println("\nthe Intel-style tuned table sits close to 1.0x; the Open MPI fixed rules do")
	fmt.Println("not - that gap is exactly the tuning potential the paper's selector captures.")
}
