// allocation_tuning demonstrates the paper's deployment workflow with a
// SLURM-style batch job: the benchmark and tuning steps ran offline; when a
// job allocation becomes known (nodes x ppn), the trained models are
// queried for a handful of message sizes and a tuning rules file is written,
// to be loaded by the MPI library at application start.
//
// Run with: go run ./examples/allocation_tuning
package main

import (
	"fmt"
	"log"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
)

func main() {
	// Offline: benchmark the allreduce portfolio on the node counts a
	// site typically reserves for tuning runs.
	spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
	if err != nil {
		log.Fatal(err)
	}
	spec.Nodes = []int{2, 4, 8}
	spec.PPNs = []int{1, 2, 4}
	spec.Msizes = []int64{16, 256, 4096, 65536, 1048576}
	fmt.Println("offline: benchmarking allreduce portfolio on tuning allocations {2,4,8} nodes...")
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, MaxTime: 1, SyncJitter: 3e-7}, nil)
	if err != nil {
		log.Fatal(err)
	}
	_, set, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("offline: fitting one XGBoost model per algorithm configuration...")
	sel, err := core.Train(ds, set, "xgboost", spec.Nodes)
	if err != nil {
		log.Fatal(err)
	}

	// Job submission time: SLURM grants an allocation that was never
	// benchmarked (the paper's 34x32 scenario, scaled down: 7 nodes).
	const jobNodes, jobPPN = 7, 4
	fmt.Printf("\njob allocated: %d nodes x %d ppn -> writing tuning rules file:\n\n", jobNodes, jobPPN)
	fmt.Print(sel.TuningFile(jobNodes, jobPPN, spec.Msizes))

	fmt.Println("\nthe file maps message-size thresholds to algorithm/configuration ids and is")
	fmt.Println("loaded at MPI_Init, overriding the library's hard-coded decision logic.")
}
