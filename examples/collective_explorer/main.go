// collective_explorer sweeps every collective portfolio of a library on one
// machine and prints, per message size, the fastest algorithm configuration
// and its margin over the slowest — a quick map of how contested each
// selection problem is.
//
// Run with: go run ./examples/collective_explorer [-lib "Open MPI"] [-nodes 8] [-ppn 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
)

func main() {
	libName := flag.String("lib", "Open MPI", "library profile: 'Open MPI' or 'Intel MPI'")
	machName := flag.String("machine", "Hydra", "machine: Hydra, Jupiter, SuperMUC-NG")
	nodes := flag.Int("nodes", 8, "compute nodes")
	ppn := flag.Int("ppn", 8, "processes per node")
	flag.Parse()

	lib, err := mpilib.ByName(*libName)
	if err != nil {
		log.Fatal(err)
	}
	mach, err := machine.ByName(*machName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := mach.Topo(*nodes, *ppn)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	fmt.Printf("%s on %s, %d x %d processes\n", lib.Name, mach.Name, *nodes, *ppn)
	for _, collName := range lib.Collectives() {
		set, err := lib.Collective(collName)
		if err != nil {
			log.Fatal(err)
		}
		msizes := []int64{16, 1024, 65536, 1048576}
		if collName == mpilib.Alltoall {
			msizes = []int64{16, 1024, 16384, 65536}
		}
		fmt.Printf("\n%s (%d algorithms, %d configurations):\n", collName, set.NumAlgs, len(set.Configs))
		for _, m := range msizes {
			var bestCfg, worstCfg mpilib.Config
			bestT, worstT := math.Inf(1), 0.0
			for _, cfg := range set.Selectable() {
				t, err := mpilib.SimulateOnce(eng, cfg, mach.Net, topo, m, 5, false)
				if err != nil {
					log.Fatal(err)
				}
				if t < bestT {
					bestCfg, bestT = cfg, t
				}
				if t > worstT {
					worstCfg, worstT = cfg, t
				}
			}
			fmt.Printf("  %8d B  best: %-30s %10.4gs   worst: %-30s (%.0fx slower)\n",
				m, bestCfg.Label(), bestT, worstCfg.Label(), worstT/bestT)
		}
	}
	fmt.Println("\nthe best/worst spread is the price of a wrong selection - the problem the")
	fmt.Println("paper's per-configuration regression models solve automatically.")
}
