// Package mpicollpred_test provides one testing.B benchmark per table and
// figure of the paper, exercising the exact code path that regenerates the
// artifact (cmd/experiments runs the full-size versions; the benchmarks run
// scaled-down grids so `go test -bench=.` finishes in minutes).
package mpicollpred_test

import (
	"sync"
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/eval"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
)

// microDataset builds a small measured dataset once per (name) and shares
// it across benchmarks.
type micro struct {
	ds   *dataset.Dataset
	mach machine.Machine
	set  *mpilib.CollectiveSet
}

var (
	microCache = map[string]*micro{}
	microMu    sync.Mutex
)

func microFor(b *testing.B, name string) *micro {
	b.Helper()
	microMu.Lock()
	defer microMu.Unlock()
	if m, ok := microCache[name]; ok {
		return m
	}
	spec, err := dataset.SpecByName(name, dataset.ScaleSmoke)
	if err != nil {
		b.Fatal(err)
	}
	spec.Nodes = []int{2, 3, 4, 5, 6}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 1024, 16384, 262144, 1048576}
	if spec.Coll == mpilib.Alltoall {
		spec.Msizes = []int64{16, 1024, 16384}
	}
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 2, SyncJitter: 1e-7}, nil)
	if err != nil {
		b.Fatal(err)
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		b.Fatal(err)
	}
	m := &micro{ds: ds, mach: mach, set: set}
	microCache[name] = m
	return m
}

// BenchmarkTable1Machines regenerates the hardware-overview inputs: machine
// profiles and topology validation (paper Table I).
func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range machine.All() {
			if _, err := m.Topo(m.MaxN, m.MaxPPN); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Datasets measures the benchmark step itself: generating a
// (micro) dataset grid, the operation behind Table II's sample counts.
func BenchmarkTable2Datasets(b *testing.B) {
	spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
	if err != nil {
		b.Fatal(err)
	}
	spec.Nodes = []int{2, 3}
	spec.PPNs = []int{2}
	spec.Msizes = []int64{1024, 65536}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(spec, bench.Options{MaxReps: 1, SyncJitter: 1e-7}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Splits regenerates the train/test split table.
func BenchmarkTable3Splits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range eval.Splits() {
			if _, err := s.TrainNodes("full"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// table4 benchmarks one Table IV cell: train a selector and compute the
// mean speedup on held-out nodes.
func table4(b *testing.B, trainNodes []int) {
	m := microFor(b, "d1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := eval.Evaluate(m.ds, m.mach, m.set, "gam", trainNodes, []int{3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if ev.MeanSpeedup() <= 0 {
			b.Fatal("bad speedup")
		}
	}
}

// BenchmarkTable4aLargeTraining regenerates a Table IVa cell (full split).
func BenchmarkTable4aLargeTraining(b *testing.B) { table4(b, []int{2, 4, 6}) }

// BenchmarkTable4bSmallTraining regenerates a Table IVb cell (small split).
func BenchmarkTable4bSmallTraining(b *testing.B) { table4(b, []int{2, 6}) }

// BenchmarkFig2ChainSweep regenerates the chain-vs-linear speedup matrix.
func BenchmarkFig2ChainSweep(b *testing.B) {
	m := microFor(b, "d1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.ChainSpeedup(m.ds, m.set, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// strategySeries benchmarks a Fig 4/6/7/8-style panel: train + normalized
// runtime series on one allocation.
func strategySeries(b *testing.B, name string) {
	m := microFor(b, name)
	sel, err := core.Train(m.ds, m.set, "gam", []int{2, 4, 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.NormalizedRuntime(m.ds, m.mach, m.set, sel, 5, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4BcastHydra regenerates a Fig. 4 panel (Bcast, Open MPI, Hydra).
func BenchmarkFig4BcastHydra(b *testing.B) { strategySeries(b, "d1") }

// BenchmarkFig6AllreduceIntel regenerates a Fig. 6 panel (Allreduce, Intel MPI).
func BenchmarkFig6AllreduceIntel(b *testing.B) { strategySeries(b, "d5") }

// BenchmarkFig7AllreduceJupiter regenerates a Fig. 7 panel (Allreduce, Jupiter).
func BenchmarkFig7AllreduceJupiter(b *testing.B) { strategySeries(b, "d4") }

// BenchmarkFig8BcastSuperMUC regenerates a Fig. 8 panel (Bcast, SuperMUC-NG).
func BenchmarkFig8BcastSuperMUC(b *testing.B) { strategySeries(b, "d8") }

// BenchmarkFig5AlgorithmMap regenerates the predicted-algorithm map for the
// three learners.
func BenchmarkFig5AlgorithmMap(b *testing.B) {
	m := microFor(b, "d1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		choices, err := eval.AlgorithmMap(m.ds, m.set, []string{"knn", "gam", "xgboost"},
			[]int{2, 4, 6}, []int{3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(choices) == 0 {
			b.Fatal("no choices")
		}
	}
}

// BenchmarkBudgetMeasurement regenerates the §V budget argument's primitive:
// one time-budgeted ReproMPI-style measurement.
func BenchmarkBudgetMeasurement(b *testing.B) {
	m := microFor(b, "d1")
	cfg, err := m.set.Config(1)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := m.mach.Topo(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	runner := bench.NewRunner(bench.DefaultOptions(m.mach.Name))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meas, err := runner.MeasureCapped(cfg, m.mach.Net, topo, 4096, uint64(i), 10)
		if err != nil {
			b.Fatal(err)
		}
		if meas.Median() <= 0 {
			b.Fatal("bad measurement")
		}
	}
}
